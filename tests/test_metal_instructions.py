"""The Metal instruction extension end to end (paper Table 1 + §2.3)."""

import pytest

from repro import MRoutine, build_metal_machine
from repro.errors import GuestPanic


def machine_with(routines, **kw):
    kw.setdefault("with_caches", False)
    return build_metal_machine(routines, **kw)


class TestTable1:
    def test_menter_passes_args_in_gprs(self):
        # GPRs are shared across modes: that's how arguments flow (paper §2.1)
        double = MRoutine(name="double", entry=7, source="""
            add  a0, a0, a0
            mexit
        """)
        m = machine_with([double])
        m.load_and_run("""
_start:
    li   a0, 21
    menter MR_DOUBLE
    halt
""")
        assert m.reg("a0") == 42

    def test_m31_holds_return_address(self):
        grab = MRoutine(name="grab", entry=0, source="""
            rmr  a1, m31
            mexit
        """)
        m = machine_with([grab])
        prog = m.assemble("""
_start:
    menter MR_GRAB
after:
    halt
""", base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        m.run()
        assert m.reg("a1") == prog.symbols["after"]

    def test_rmr_wmr_roundtrip(self):
        r = MRoutine(name="r", entry=0, source="""
            wmr  m10, a0
            rmr  a1, m10
            mexit
        """, mregs=(10,))
        m = machine_with([r])
        m.load_and_run("_start:\n    li a0, 0xBEEF\n    menter MR_R\n    halt\n")
        assert m.reg("a1") == 0xBEEF
        assert m.mreg(10) == 0xBEEF

    def test_mld_mst_data_segment(self):
        r = MRoutine(name="r", entry=0, data_words=2, source="""
            mst  a0, R_DATA+0(zero)
            mst  a1, R_DATA+4(zero)
            mld  a2, R_DATA+0(zero)
            mld  a3, R_DATA+4(zero)
            mexit
        """)
        m = machine_with([r])
        m.load_and_run("""
_start:
    li a0, 11
    li a1, 22
    menter MR_R
    halt
""")
        assert m.reg("a2") == 11
        assert m.reg("a3") == 22

    def test_mld_indexed_addressing(self):
        r = MRoutine(name="r", entry=0, data_words=4,
                     data_init=(10, 20, 30, 40), source="""
            slli t0, a0, 2
            mld  a1, 0(t0)
            mexit
        """)
        m = machine_with([r])
        m.load_and_run("_start:\n    li a0, 2\n    menter MR_R\n    halt\n")
        assert m.reg("a1") == 30

    def test_mexitm_commits_result(self):
        # Exit-with-result-commit: GPR[m26] := m27 during the exit slot.
        r = MRoutine(name="r", entry=0, source="""
            li   t0, 12        # a2's index
            wmr  m26, t0
            li   t0, 777
            wmr  m27, t0
            li   t0, 5         # t0 ends as 5 ...
            mexitm             # ... and a2 receives 777 at exit
        """)
        m = machine_with([r])
        m.load_and_run("_start:\n    menter MR_R\n    halt\n")
        assert m.reg("a2") == 777
        assert m.reg("t0") == 5

    def test_menter_unknown_entry_is_illegal(self):
        # entering an entry with no mroutine loaded traps, not crashes
        skipper = MRoutine(name="skipper", entry=0, source="""
            rmr  t6, m30
            addi t6, t6, 4
            wmr  m31, t6
            mexit
        """)
        m = machine_with([skipper])
        m.route_cause(1, "skipper")
        m.load_and_run("""
_start:
    menter 55          # nothing loaded there -> ILLEGAL, skipped
    li   a0, 1
    halt
""")
        assert m.reg("a0") == 1
        assert m.core.metal.stats.deliveries.get(1) == 1

    def test_mram_runtime_bounds_panic(self):
        # Dynamic out-of-bounds mld inside an mroutine is a double fault.
        # The address arrives in a guest register so the static analyzer
        # cannot bound it (a constant 0x10000 would be rejected at load).
        r = MRoutine(name="r", entry=0, source="""
            mld  a0, 0(t0)
            mexit
        """)
        m = machine_with([r])
        with pytest.raises(GuestPanic):
            m.load_and_run(
                "_start:\n    li t0, 0x10000\n    menter MR_R\n    halt\n"
            )


class TestArchFeatures:
    def test_direct_physical_access(self):
        r = MRoutine(name="r", entry=0, source="""
            mpst a1, 0(a0)
            mpld a2, 0(a0)
            mexit
        """)
        m = machine_with([r])
        m.load_and_run("""
_start:
    li a0, 0x3000
    li a1, 0x5555
    menter MR_R
    halt
""")
        assert m.reg("a2") == 0x5555
        assert m.read_word(0x3000) == 0x5555

    def test_mgpr_indirect_access(self):
        r = MRoutine(name="r", entry=0, source="""
            mgprr t1, a0       # t1 := GPR[a0]
            addi  t1, t1, 1
            mgprw a1, t1       # GPR[a1] := t1
            mexit
        """)
        m = machine_with([r])
        m.load_and_run("""
_start:
    li s3, 100        # x19
    li a0, 19         # read x19
    li a1, 20         # write x20 (s4)
    menter MR_R
    halt
""")
        assert m.reg("s4") == 101

    def test_mraise_dispatches_to_handler(self):
        raiser = MRoutine(name="raiser", entry=0, source="""
            li   t0, CAUSE_PRIVILEGE
            mraise t0
        """)
        handler = MRoutine(name="handler", entry=1, source="""
            rmr  a0, m28       # observed cause
            mexit              # m31 still holds the original menter return
        """)
        m = machine_with([raiser, handler])
        m.route_cause(11, "handler")
        m.load_and_run("_start:\n    menter MR_RAISER\n    halt\n")
        assert m.reg("a0") == 11

    def test_mipend_miack(self):
        r = MRoutine(name="r", entry=0, source="""
            mipend a0
            li     t0, 9
            miack  t0
            mipend a1
            mexit
        """)
        m = machine_with([r])
        m.irq.raise_line(9)
        m.load_and_run("_start:\n    menter MR_R\n    halt\n")
        assert m.reg("a0") == 1 << 9
        assert m.reg("a1") == 0

    def test_mtlbw_from_mcode_enables_translation(self):
        r = MRoutine(name="r", entry=0, source="""
            mtlbw a0, a1
            mexit
        """)
        m = machine_with([r])
        m.load_and_run("""
_start:
    li  a0, 0x700000           # va, asid 0
    li  a1, 0x3000 + 1 + 2     # pa | R | W
    menter MR_R
    # paging still off: prove the entry exists by turning paging on via
    # another mroutine would need code mapping; just check host-side.
    halt
""")
        assert m.core.tlb.lookup(0x700) is not None

    def test_micept_from_mcode(self):
        setup = MRoutine(name="setup", entry=0, source="""
            micept a0, a1
            mexit
        """)
        handler = MRoutine(name="handler", entry=1, source="""
            li   t6, 1234      # visible effect; then skip the load
            mexit
        """)
        m = machine_with([setup, handler])
        m.load_and_run("""
_start:
    li   a0, 0x503             # opcode LOAD | funct3 2 | match-funct3
    li   a1, MR_HANDLER
    menter MR_SETUP
    li   t0, 0x3000
    lw   a2, 0(t0)             # intercepted: skipped, t6 set instead
    halt
""")
        assert m.reg("t6") == 1234
        assert m.core.metal.intercept.hits == 1


class TestInterceptMechanics:
    def _machine(self):
        setup = MRoutine(name="setup", entry=0, source="""
            micept a0, a1
            mexit
        """)
        teardown = MRoutine(name="teardown", entry=2, source="""
            miceptd a0
            mexit
        """)
        emul = MRoutine(name="emul", entry=1, source="""
            # emulate the load: rd := mem[rs1+imm] + 1000
            wmr  m13, t0
            wmr  m14, t1
            rmr  t0, m29
            srai t1, t0, 20
            rmr  t0, m25
            add  t0, t0, t1
            lw   t1, 0(t0)
            li   t0, 1000
            add  t1, t1, t0
            wmr  m27, t1
            rmr  t0, m29
            srli t0, t0, 7
            andi t0, t0, 31
            wmr  m26, t0
            rmr  t1, m14
            rmr  t0, m13
            mexitm
        """, mregs=(13, 14))
        return machine_with([setup, emul, teardown])

    def test_emulating_handler(self):
        m = self._machine()
        m.write_word(0x3000, 5)
        m.load_and_run("""
_start:
    li   a0, 0x503
    li   a1, MR_EMUL
    menter MR_SETUP
    li   t2, 0x3000
    lw   a2, 0(t2)         # emulated: 5 + 1000
    li   a0, 0x503
    menter MR_TEARDOWN
    lw   a3, 0(t2)         # no longer intercepted: raw 5
    halt
""")
        assert m.reg("a2") == 1005
        assert m.reg("a3") == 5

    def test_mroutines_not_intercepted(self):
        # The emul handler itself performs lw; it must not self-intercept.
        m = self._machine()
        m.write_word(0x3000, 1)
        m.load_and_run("""
_start:
    li   a0, 0x503
    li   a1, MR_EMUL
    menter MR_SETUP
    li   t2, 0x3000
    lw   a2, 0(t2)
    halt
""")
        assert m.core.metal.intercept.hits == 1
