"""Tracer, snapshot/restore and CLI runner tests."""

import subprocess
import sys

import pytest

from repro import MRoutine, build_metal_machine, build_trap_machine
from repro.machine.snapshot import restore_snapshot, take_snapshot
from repro.machine.trace import Tracer

PROGRAM = """
_start:
    li   a0, 3
    li   a1, 4
    add  a2, a0, a1
    halt
"""


class TestTracer:
    def test_records_retired_stream(self):
        m = build_trap_machine(with_caches=False)
        tracer = Tracer(m)
        with tracer:
            m.load_and_run(PROGRAM)
        mnemonics = [r.mnemonic for r in tracer.records]
        assert mnemonics[-2:] == ["add", "halt"]
        assert "lui" in mnemonics  # li expansion visible
        assert all(not r.in_metal for r in tracer.records)

    def test_limit_drops(self):
        m = build_trap_machine(with_caches=False)
        tracer = Tracer(m, limit=2)
        with tracer:
            m.load_and_run(PROGRAM)
        assert len(tracer) == 2
        assert tracer.dropped > 0
        assert "dropped" in tracer.format()

    def test_mnemonic_filter(self):
        m = build_trap_machine(with_caches=False)
        tracer = Tracer(m, mnemonics={"add"})
        with tracer:
            m.load_and_run(PROGRAM)
        assert [r.mnemonic for r in tracer.records] == ["add"]

    def test_metal_mode_tracing(self):
        noop = MRoutine(name="noop", entry=0, source="nop\nmexit\n")
        m = build_metal_machine([noop], with_caches=False)
        tracer = Tracer(m, only_metal=True)
        with tracer:
            m.load_and_run("_start:\n    menter MR_NOOP\n    halt\n")
        # only the instructions fetched from MRAM count as Metal-mode rows
        # (nop is canonically addi zero, zero, 0)
        assert [r.mnemonic for r in tracer.records] == ["addi", "mexit"]
        assert all(r.in_metal for r in tracer.records)
        assert "mexit" in tracer.records[-1].text

    def test_histogram(self):
        m = build_trap_machine(with_caches=False)
        tracer = Tracer(m)
        with tracer:
            m.load_and_run(PROGRAM)
        hist = tracer.mnemonic_histogram()
        assert hist["addi"] >= 2  # the li low halves

    def test_detach_restores_hook(self):
        m = build_trap_machine(with_caches=False)
        assert m.sim.trace_fn is None
        with Tracer(m):
            assert m.sim.trace_fn is not None
        assert m.sim.trace_fn is None

    def test_format_contains_pc_and_text(self):
        m = build_trap_machine(with_caches=False)
        tracer = Tracer(m)
        with tracer:
            m.load_and_run(PROGRAM)
        text = tracer.format()
        assert "add a2, a0, a1" in text


class TestSnapshot:
    def test_roundtrip_trap_machine(self):
        m = build_trap_machine(with_caches=False)
        m.load_and_run("""
_start:
    li   s0, 77
    li   t0, 0x2000
    sw   s0, 0(t0)
    halt
""")
        snap = take_snapshot(m)
        # perturb everything
        m.core.regs[8] = 0
        m.core.pc = 0
        m.write_word(0x2000, 0)
        m.core.csrs.mtvec = 0x9999
        restore_snapshot(m, snap)
        assert m.reg("s0") == 77
        assert m.read_word(0x2000) == 77
        assert m.core.csrs.mtvec == snap.csrs["mtvec"]
        assert m.core.halted

    def test_roundtrip_metal_state(self):
        r = MRoutine(name="r", entry=0, data_words=1, source="""
            wmr  m7, a0
            mst  a0, R_DATA(zero)
            mexit
        """, mregs=(7,))
        m = build_metal_machine([r], with_caches=False)
        m.load_and_run("_start:\n    li a0, 0x55\n    menter MR_R\n    halt\n")
        snap = take_snapshot(m)
        m.core.metal.mregs.write(7, 0)
        m.core.metal.mram.store_word(0, 0)
        restore_snapshot(m, snap)
        assert m.mreg(7) == 0x55
        assert m.core.metal.mram.load_word(0) == 0x55

    def test_mram_code_captured(self):
        """MRAM *code* is snapshot state too (the MFI recovery layer
        undoes code-segment corruption by restoring a checkpoint), and
        restoring a different image bumps code_version so stale
        predecoded blocks die."""
        r = MRoutine(name="r", entry=0, source="nop\nmexit\n")
        m = build_metal_machine([r], with_caches=False)
        mram = m.core.metal.mram
        pristine = bytes(mram.code)
        snap = take_snapshot(m)
        mram.corrupt("code", 0, 0x40)
        version = mram.code_version
        restore_snapshot(m, snap)
        assert bytes(mram.code) == pristine
        assert mram.code_version > version
        # No gratuitous bump when the code did not change.
        version = mram.code_version
        restore_snapshot(m, snap)
        assert mram.code_version == version

    def test_restore_resumes_execution(self):
        m = build_trap_machine(with_caches=False)
        prog = m.assemble("""
_start:
    li   s0, 5
mid:
    addi s0, s0, 1
    halt
""", base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        # run up to `mid`
        while m.core.pc != prog.symbols["mid"]:
            m.sim.step()
        snap = take_snapshot(m)
        m.run()
        first = m.reg("s0")
        restore_snapshot(m, snap)
        m.run()
        assert m.reg("s0") == first == 6

    def test_tlb_state_captured(self):
        from repro.mmu.types import TlbEntry

        m = build_trap_machine(with_caches=False)
        m.core.tlb.insert(TlbEntry(vpn=5, ppn=9, perms=1))
        m.core.tlb.current_asid = 3
        snap = take_snapshot(m)
        m.core.tlb.flush()
        m.core.tlb.current_asid = 0
        restore_snapshot(m, snap)
        assert len(m.core.tlb) == 1
        assert m.core.tlb.current_asid == 3

    def test_delivery_routing_captured(self):
        """The delivery table (mivec routing + mintc flag) is guest-
        mutable state and must survive snapshot/restore (regression:
        snapshots previously dropped it, so a restored checkpoint kept
        whatever routing the *later* execution had installed)."""
        r = MRoutine(name="r", entry=0, source="mexit\n")
        m = build_metal_machine([r], with_caches=False)
        delivery = m.core.metal.delivery
        m.route_cause(8, "r")                  # ECALL -> r
        delivery.interrupts_enabled = True
        snap = take_snapshot(m)

        delivery.unroute(8)
        delivery.route(16, 0)                  # different routing entirely
        delivery.interrupts_enabled = False

        restore_snapshot(m, snap)
        assert delivery.handler_for(8) == m.metal_image.entry_of("r")
        assert delivery.handler_for(16) is None
        assert delivery.interrupts_enabled

    def test_intercept_rules_captured_and_watchers_fire(self):
        """Intercept rules are part of the snapshot, and restoring them
        across an empty<->non-empty transition fires the transition
        watchers (the tcache flushes its normal-mode blocks, which were
        compiled under the wrong interception assumption)."""
        r = MRoutine(name="r", entry=0, source="mexit\n")
        m = build_metal_machine([r], with_caches=False)
        intercept = m.core.metal.intercept
        transitions = []
        intercept.watch_transitions(
            lambda active: transitions.append(active))

        intercept.enable(0x503, 1)             # intercept lw
        snap = take_snapshot(m)
        rules_at_snap = intercept.snapshot_rules()

        intercept.clear()                      # guest dropped the rule
        assert intercept.empty
        del transitions[:]

        restore_snapshot(m, snap)
        assert not intercept.empty
        assert intercept.snapshot_rules() == rules_at_snap
        assert transitions == [True], (
            "empty->non-empty transition watcher must fire on restore")

        # And the reverse: restoring an *empty* rule set over live rules.
        empty_snap = take_snapshot(m)
        intercept.clear()
        restore_snapshot(m, empty_snap)        # non-empty again
        intercept.clear()
        snap2 = take_snapshot(m)               # captured empty
        intercept.enable(0x503, 1)
        del transitions[:]
        restore_snapshot(m, snap2)
        assert intercept.empty
        assert transitions == [False]

    def test_restored_intercepts_are_architecturally_live(self):
        """End-to-end: a restored machine re-executes with the restored
        rule set, not the one active at restore time."""
        setup = MRoutine(name="setup", entry=0, source="""
            micept a0, a1
            mexit
        """)
        emul = MRoutine(name="emul", entry=1, source="""
            wmr  m13, t0
            li   t0, 0x77
            wmr  m27, t0          # emulated load result
            rmr  t0, m29          # intercepted instruction word
            srli t0, t0, 7
            andi t0, t0, 31
            wmr  m26, t0          # its rd
            rmr  t0, m13
            mexitm
        """, shared_mregs=(13,))
        m = build_metal_machine([setup, emul], with_caches=False)
        prog = m.assemble("""
_start:
    li   a0, 0x503
    li   a1, MR_EMUL
    menter MR_SETUP
mid:
    li   s2, 0x3000
    lw   a2, 0(s2)
    halt
""", base=0x1000)
        m.load(prog)
        m.write_word(0x3000, 0x1234)
        m.core.pc = 0x1000
        m.run(stop_pc=prog.symbols["mid"], max_instructions=10_000,
              raise_on_limit=False)
        snap = take_snapshot(m)                # rule installed, lw pending

        m.run(max_instructions=10_000, raise_on_limit=False)
        assert m.reg("a2") == 0x77             # intercepted + emulated

        restore_snapshot(m, snap)
        m.core.metal.intercept.clear()         # desync: rules gone...
        restore_snapshot(m, snap)              # ...and restored again
        m.run(max_instructions=10_000, raise_on_limit=False)
        assert m.reg("a2") == 0x77, (
            "restored intercept rule must intercept the reloaded lw")


class TestCli:
    def _run(self, tmp_path, source, *flags):
        path = tmp_path / "prog.s"
        path.write_text(source)
        return subprocess.run(
            [sys.executable, "-m", "repro", str(path), *flags],
            capture_output=True, text=True, timeout=120,
        )

    def test_runs_program(self, tmp_path):
        result = self._run(tmp_path, PROGRAM)
        assert result.returncode == 0
        assert "[halt]" in result.stdout

    def test_regs_dump(self, tmp_path):
        result = self._run(tmp_path, PROGRAM, "--regs")
        assert "a2 = 00000007" in result.stdout

    def test_trace_flag(self, tmp_path):
        result = self._run(tmp_path, PROGRAM, "--trace")
        assert "add a2, a0, a1" in result.stdout

    def test_trap_machine_flag(self, tmp_path):
        result = self._run(tmp_path, PROGRAM, "--machine", "trap",
                           "--engine", "pipeline", "--regs")
        assert result.returncode == 0

    def test_console_output_printed(self, tmp_path):
        result = self._run(tmp_path, """
_start:
    li   t0, CONSOLE_TX
    li   t1, 'Z'
    sw   t1, 0(t0)
    halt
""")
        assert "Z" in result.stdout

    def test_missing_file(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro", str(tmp_path / "nope.s")],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2

    def test_assembly_error_reported(self, tmp_path):
        result = self._run(tmp_path, "_start:\n    frobnicate\n")
        assert result.returncode == 1
        assert "error" in result.stderr
