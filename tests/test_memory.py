"""Physical memory, bus routing and MMIO base-class tests."""

import pytest

from repro.errors import AlignmentError, BusError
from repro.mem import MemoryBus, MmioRegisterBank, PhysicalMemory


class TestPhysicalMemory:
    def test_little_endian_word(self):
        ram = PhysicalMemory(64)
        ram.write_u32(0, 0x11223344)
        assert ram.read_u8(0) == 0x44
        assert ram.read_u8(3) == 0x11
        assert ram.read_u16(0) == 0x3344

    def test_based_region(self):
        ram = PhysicalMemory(0x100, base=0x8000)
        ram.write_u32(0x8000, 7)
        assert ram.read_u32(0x8000) == 7
        assert ram.contains(0x80FF)
        assert not ram.contains(0x8100)

    def test_out_of_bounds(self):
        ram = PhysicalMemory(16)
        with pytest.raises(BusError):
            ram.read_u32(16)
        with pytest.raises(BusError):
            ram.read_u32(13)  # straddles the end
        with pytest.raises(BusError):
            ram.write_u8(-1, 0)

    def test_bulk(self):
        ram = PhysicalMemory(32)
        ram.write_bytes(4, b"hello")
        assert ram.read_bytes(4, 5) == b"hello"

    def test_fill(self):
        ram = PhysicalMemory(8)
        ram.fill(0xAB)
        assert ram.read_bytes(0, 8) == b"\xab" * 8

    def test_value_truncation(self):
        ram = PhysicalMemory(8)
        ram.write_u32(0, 0x1_FFFF_FFFF)
        assert ram.read_u32(0) == 0xFFFFFFFF

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0)


class TestBus:
    def test_routing_two_regions(self):
        bus = MemoryBus()
        bus.attach_ram(0, 0x1000)
        bus.attach_ram(0x8000, 0x1000)
        bus.write_u32(0x10, 1)
        bus.write_u32(0x8010, 2)
        assert bus.read_u32(0x10) == 1
        assert bus.read_u32(0x8010) == 2

    def test_unmapped_raises(self):
        bus = MemoryBus()
        bus.attach_ram(0, 0x100)
        with pytest.raises(BusError):
            bus.read_u32(0x4000)

    def test_overlap_rejected(self):
        bus = MemoryBus()
        bus.attach_ram(0, 0x1000)
        with pytest.raises(BusError):
            bus.attach_ram(0x800, 0x1000)

    def test_device_routing_and_is_device(self):
        bus = MemoryBus()
        bus.attach_ram(0, 0x1000)
        dev = MmioRegisterBank(0xF000_0000, nregs=4)
        bus.attach_device(dev)
        bus.write_u32(0xF000_0004, 99)
        assert bus.read_u32(0xF000_0004) == 99
        assert bus.is_device(0xF000_0000)
        assert not bus.is_device(0x10)

    def test_bulk_to_device_rejected(self):
        bus = MemoryBus()
        dev = MmioRegisterBank(0x1000, nregs=4)
        bus.attach_device(dev)
        with pytest.raises(BusError):
            bus.write_bytes(0x1000, b"abcd")

    def test_tick_fanout(self):
        bus = MemoryBus()

        class Ticker(MmioRegisterBank):
            ticks = 0

            def tick(self, cycles):
                self.ticks += cycles

        dev = Ticker(0x1000, nregs=1)
        bus.attach_device(dev)
        bus.tick(5)
        bus.tick(3)
        assert dev.ticks == 8


class TestMmioBase:
    def test_subword_access_rejected(self):
        dev = MmioRegisterBank(0, nregs=2)
        with pytest.raises(AlignmentError):
            dev.read_u8(0)
        with pytest.raises(AlignmentError):
            dev.write_u16(0, 1)

    def test_misaligned_word_rejected(self):
        dev = MmioRegisterBank(0, nregs=2)
        with pytest.raises(AlignmentError):
            dev.read_u32(2)

    def test_unknown_register(self):
        dev = MmioRegisterBank(0, nregs=1)
        with pytest.raises(BusError):
            dev.read_u32(0x10)
