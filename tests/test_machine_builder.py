"""Machine builder and composition tests."""

import pytest

from repro import (
    MachineConfig,
    MRoutine,
    TimingModel,
    build_metal_machine,
    build_palcode_machine,
    build_trap_machine,
    palcode_timing,
)


NOOP = [MRoutine(name="noop", entry=0, source="mexit\n")]


class TestConfigs:
    def test_engine_selection(self):
        from repro.cpu import FunctionalSimulator, PipelineSimulator

        f = build_trap_machine(engine="functional")
        p = build_trap_machine(engine="pipeline")
        assert isinstance(f.sim, FunctionalSimulator)
        assert isinstance(p.sim, PipelineSimulator)
        assert not isinstance(f.sim, PipelineSimulator)

    def test_bad_engine(self):
        with pytest.raises(ValueError):
            build_trap_machine(engine="quantum")

    def test_cache_toggle(self):
        with_c = build_trap_machine(with_caches=True)
        without = build_trap_machine(with_caches=False)
        assert with_c.core.icache is not None
        assert without.core.icache is None

    def test_ram_size(self):
        m = build_trap_machine(ram_bytes=1 << 16)
        assert m.ram.size == 1 << 16

    def test_symbol_environment(self):
        m = build_metal_machine(NOOP)
        for sym in ("CONSOLE_TX", "CAUSE_ECALL", "MR_NOOP", "PTE_R",
                    "CSR_MTVEC", "IRQ_LINE_NIC", "PRIV_USER"):
            assert sym in m.symbols, sym

    def test_extra_symbols(self):
        m = build_trap_machine(extra_symbols={"ANSWER": 42})
        prog = m.assemble("li a0, ANSWER\nhalt\n")
        assert prog.size == 12

    def test_trap_machine_has_no_metal(self):
        m = build_trap_machine()
        assert m.core.metal is None
        assert m.metal_image is None


class TestDevicesWired:
    def test_device_roster(self):
        m = build_trap_machine()
        names = [d.name for d in m.bus.devices]
        assert names == ["console", "timer", "nic", "blockdev"]

    def test_nic_dma_bus_wired(self):
        m = build_trap_machine()
        assert m.nic.bus is m.bus
        assert m.blockdev.bus is m.bus

    def test_irq_lines(self):
        m = build_trap_machine()
        m.timer.compare = 0
        m.timer.irq_enabled = True
        assert m.irq.highest_pending() == 0


class TestPalcode:
    def test_palcode_timing_shape(self):
        t = palcode_timing()
        assert t.decode_replacement is False
        assert t.mram_fetch > TimingModel().mram_fetch

    def test_noop_call_near_18_cycles(self):
        """Calibration check: the §5 Alpha figure (~18-cycle no-op call)."""
        def per_call(machine):
            loop = """
_start:
    li   s0, 500
loop:
    menter MR_NOOP
    addi s0, s0, -1
    bnez s0, loop
    halt
"""
            empty = """
_start:
    li   s0, 500
loop:
    addi s0, s0, -1
    bnez s0, loop
    halt
"""
            m1 = machine()
            m1.load_and_run(loop)
            m2 = machine()
            m2.load_and_run(empty)
            return (m1.cycles - m2.cycles) / 500

        # Warm caches: the comparison isolates transition cost, not the
        # caller's own fetch behaviour.
        pal = per_call(lambda: build_palcode_machine(
            [MRoutine(name="noop", entry=0, source="mexit\n")],
        ))
        metal = per_call(lambda: build_metal_machine(
            [MRoutine(name="noop", entry=0, source="mexit\n")],
        ))
        assert 15 <= pal <= 21       # "approximately 18 cycles"
        assert metal <= 3            # "virtually zero overhead"
        assert pal / metal >= 5      # Metal is an order cheaper


class TestMachineHelpers:
    def test_reg_accessors(self):
        m = build_trap_machine()
        m.set_reg("a0", 9)
        assert m.reg("a0") == 9

    def test_memory_helpers(self):
        m = build_trap_machine()
        m.write_word(0x100, 0x1234)
        assert m.read_word(0x100) == 0x1234
        m.write_bytes(0x200, b"xyz")
        assert m.read_bytes(0x200, 3) == b"xyz"

    def test_inventory_metal(self):
        m = build_metal_machine(NOOP)
        inv = m.inventory()
        assert inv["mroutines"]["noop"]["entry"] == 0
        assert inv["mreg_count"] == 32

    def test_inventory_trap(self):
        inv = build_trap_machine().inventory()
        assert "mroutines" not in inv

    def test_load_and_run_starts_at_start_label(self):
        m = build_trap_machine()
        m.load_and_run("""
    nop
_start:
    li a0, 3
    halt
""", base=0x1000)
        assert m.reg("a0") == 3
