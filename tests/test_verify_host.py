"""MVTV host-invariant-lint tests (:mod:`repro.verify.hostlint`).

The lints parse the host sources (``ast``), so the mutation tests here
feed edited source text through ``override_sources`` rather than
patching live modules: each seeded bug is the real text of the file
with one invariant-preserving line added or removed.

Also houses the lint-registry satellites: the APPS registry must cover
every bundled mcode application, and ``python -m repro lint --json``
must emit the machine-readable report.
"""

from __future__ import annotations

import json
import pathlib

from repro.analysis.lint import APPS, lint_main
from repro.verify.cli import verify_main
from repro.verify.hostlint import (
    _SRC_ROOT,
    check_eviction_completeness,
    check_snapshot_completeness,
    run_host_lints,
)


def _mutated(relpath, old, new):
    text = (_SRC_ROOT / relpath).read_text()
    assert old in text, f"mutation anchor missing from {relpath}"
    return {relpath: text.replace(old, new, 1)}


# ---------------------------------------------------------------------------
# clean tree
# ---------------------------------------------------------------------------

def test_host_sources_lint_clean():
    assert run_host_lints() == []


# ---------------------------------------------------------------------------
# seeded bugs
# ---------------------------------------------------------------------------

def test_unsnapshotted_field_is_detected():
    # A new mutable field on the core that take_snapshot never captures.
    override = _mutated(
        "cpu/core.py",
        "        self.instret = 0",
        "        self.instret = 0\n        self.specbuf = []")
    findings = check_snapshot_completeness(override_sources=override)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.pass_name == "snapshot"
    assert "CpuCore.specbuf" in finding.where
    assert "not captured" in finding.message


def test_missing_code_version_bump_is_detected():
    # write_code patches MRAM code bytes without bumping code_version —
    # stale tier-2 blocks would keep running the old code.
    override = _mutated(
        "metal/mram.py",
        "        struct.pack_into(f\"<{len(words)}I\", self.code, offset, "
        "*words)\n        self.code_version += 1",
        "        struct.pack_into(f\"<{len(words)}I\", self.code, offset, "
        "*words)")
    findings = check_eviction_completeness(override_sources=override)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.pass_name == "eviction"
    assert "write_code" in finding.where


def test_missing_append_fact_refresh_is_detected():
    # The MSYNTH append path writes MRAM code into an existing image; if
    # it stops re-attaching the analysis results, the tcache's post-bump
    # lazy re-read would refresh purity facts from a stale image.
    override = _mutated(
        "metal/loader.py",
        "    image.analysis.update(analysis)\n",
        "")
    findings = check_eviction_completeness(override_sources=override)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.pass_name == "eviction"
    assert "append_mroutines" in finding.where
    assert "analysis re-attachment" in finding.message


def test_missing_highwater_advance_is_detected():
    # Same append path, other half of the invariant: the code high-water
    # mark must advance or the next append overwrites live mcode.
    override = _mutated(
        "metal/loader.py",
        "    image.code_used_bytes = code_ptr\n",
        "")
    findings = check_eviction_completeness(override_sources=override)
    assert len(findings) == 1
    assert "append_mroutines" in findings[0].where
    assert "code_used_bytes advance" in findings[0].message


def test_missing_jit_eviction_is_detected():
    # Invalidating a block without dropping its compiled function leaves
    # the dispatcher a stale jit_fn to call.
    override = _mutated(
        "cpu/tcache.py",
        "                block.valid = False\n"
        "                block.jit_fn = None",
        "                block.valid = False")
    findings = check_eviction_completeness(override_sources=override)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.pass_name == "eviction"
    assert "flush_mem" in finding.where


# ---------------------------------------------------------------------------
# satellites: registry completeness, machine-readable reports
# ---------------------------------------------------------------------------

def test_lint_registry_covers_all_bundled_apps():
    """Every mcode module that exports mroutine factories must be in
    APPS — a new app cannot dodge the lint (or the elision audit)."""
    mcode = _SRC_ROOT / "mcode"
    modules = {p.stem for p in mcode.glob("*.py")} - {"__init__"}
    factories = {stem for stem in modules
                 if "def make_" in (mcode / f"{stem}.py").read_text()}
    assert factories  # the bundle is not empty
    # Every module exporting routine factories is registered, and every
    # registry entry names a real module (runtime rides along through
    # the lint's demo routine, without factories of its own; "synth" is
    # the MSYNTH-generated set, produced by the synthesizer rather than
    # an mcode module, so generated code cannot dodge the lint either).
    assert factories <= set(APPS)
    assert set(APPS) - {"synth"} <= modules
    assert "runtime" in APPS
    assert "synth" in APPS


def test_lint_json_report(tmp_path):
    out = tmp_path / "lint.json"
    status = lint_main(["--apps", "--json", str(out)])
    payload = json.loads(out.read_text())
    assert payload["tool"] == "mas-lint"
    assert payload["ok"] == (status == 0)
    assert {img["image"] for img in payload["images"]} == set(APPS)
    for img in payload["images"]:
        assert "load_error" in img or "diagnostics" in img


def test_verify_json_report_host_pass(tmp_path):
    out = tmp_path / "verify.json"
    status = verify_main(["--passes", "host", "--json", str(out)])
    assert status == 0
    payload = json.loads(out.read_text())
    assert payload["tool"] == "mvtv"
    assert payload["passes"] == ["host"]
    assert payload["ok"] is True
    assert payload["host"] == {"snapshot_findings": 0, "eviction_findings": 0}
