"""MetalUnit, MRAM, MReg and delivery/interception table unit tests."""

import pytest

from repro.errors import (
    InterceptError,
    MetalError,
    MetalModeError,
    MramError,
)
from repro.cpu.exceptions import Cause
from repro.isa.metal_ops import pack_intercept_spec
from repro.isa.opcodes import OP_LOAD, OP_STORE
from repro.metal import (
    DeliveryTable,
    InterceptTable,
    MetalUnit,
    Mram,
    MRegFile,
    MRoutine,
    load_mroutines,
)


@pytest.fixture
def unit():
    routines = [
        MRoutine(name="first", entry=0, source="mexit\n"),
        MRoutine(name="second", entry=5, source="nop\nmexit\n"),
    ]
    return MetalUnit(load_mroutines(routines))


class TestMram:
    def test_fetch_written_code(self):
        mram = Mram()
        mram.write_code(0, [0x13, 0x6F])
        assert mram.fetch(0) == 0x13
        assert mram.fetch(4) == 0x6F

    def test_fetch_bounds(self):
        mram = Mram(code_bytes=64)
        with pytest.raises(MramError):
            mram.fetch(64)
        with pytest.raises(MramError):
            mram.fetch(2)  # misaligned

    def test_data_roundtrip(self):
        mram = Mram()
        mram.store_word(8, 0xCAFEBABE)
        assert mram.load_word(8) == 0xCAFEBABE

    def test_data_bounds_and_alignment(self):
        mram = Mram(data_bytes=16)
        with pytest.raises(MramError):
            mram.load_word(16)
        with pytest.raises(MramError):
            mram.store_word(2, 1)

    def test_code_overflow(self):
        mram = Mram(code_bytes=8)
        with pytest.raises(MramError):
            mram.write_code(4, [1, 2])

    def test_clear(self):
        mram = Mram()
        mram.write_code(0, [7])
        mram.store_word(0, 7)
        mram.clear()
        assert mram.fetch(0) == 0
        assert mram.load_word(0) == 0


class TestMRegFile:
    def test_read_write(self):
        regs = MRegFile()
        regs.write(3, 0x123)
        assert regs.read(3) == 0x123

    def test_truncation(self):
        regs = MRegFile()
        regs.write(0, 0x1_0000_0001)
        assert regs.read(0) == 1

    def test_bounds(self):
        regs = MRegFile()
        with pytest.raises(MetalError):
            regs.read(32)
        with pytest.raises(MetalError):
            regs.write(-1, 0)

    def test_snapshot_restore(self):
        regs = MRegFile()
        regs.write(1, 42)
        snap = regs.snapshot()
        regs.write(1, 0)
        regs.restore(snap)
        assert regs[1] == 42

    def test_indexing(self):
        regs = MRegFile()
        regs[7] = 9
        assert regs[7] == 9


class TestTransitions:
    def test_enter_sets_m31_and_mode(self, unit):
        offset = unit.enter(5, return_pc=0x1234)
        assert unit.in_metal
        assert unit.mregs[31] == 0x1234
        assert offset == unit.image.entry_offset(5)

    def test_enter_unknown_entry(self, unit):
        with pytest.raises(Exception):
            unit.enter(9, 0)

    def test_nested_enter_rejected(self, unit):
        unit.enter(0, 0)
        with pytest.raises(MetalModeError):
            unit.enter(0, 0)

    def test_exit_returns_m31(self, unit):
        unit.enter(0, 0xBEEF)
        assert unit.exit_metal() == 0xBEEF
        assert not unit.in_metal

    def test_exit_outside_metal_rejected(self, unit):
        with pytest.raises(MetalModeError):
            unit.exit_metal()

    def test_stats(self, unit):
        unit.enter(0, 0)
        unit.exit_metal()
        assert unit.stats.enters == 1
        assert unit.stats.exits == 1


class TestDelivery:
    def test_exception_latches_hw_mregs(self, unit):
        unit.delivery.route(Cause.PAGE_FAULT_LOAD, 5)
        offset = unit.deliver(Cause.PAGE_FAULT_LOAD, epc=0x100, info=0x2000)
        assert offset == unit.image.entry_offset(5)
        assert unit.mregs[28] == int(Cause.PAGE_FAULT_LOAD)
        assert unit.mregs[29] == 0x2000
        assert unit.mregs[30] == 0x100
        assert unit.mregs[31] == 0x100  # retry semantics

    def test_intercept_skips_by_default(self, unit):
        offset = unit.deliver(Cause.INTERCEPT, epc=0x100, info=0xAB,
                              entry=0, operands=(11, 22))
        assert offset == unit.image.entry_offset(0)
        assert unit.mregs[31] == 0x104  # skip semantics
        assert unit.mregs[25] == 11
        assert unit.mregs[24] == 22

    def test_unrouted_cause_raises(self, unit):
        with pytest.raises(MetalError):
            unit.deliver(Cause.ECALL, epc=0)

    def test_double_fault_rejected(self, unit):
        unit.delivery.route(Cause.ECALL, 0)
        unit.enter(0, 0)
        with pytest.raises(MetalError):
            unit.deliver(Cause.ECALL, epc=0)

    def test_redispatch_preserves_context(self, unit):
        unit.delivery.route(Cause.PRIVILEGE, 5)
        unit.delivery.route(Cause.ECALL, 0)
        unit.deliver(Cause.ECALL, epc=0x80, info=0x42)
        offset = unit.redispatch(Cause.PRIVILEGE)
        assert offset == unit.image.entry_offset(5)
        assert unit.mregs[28] == int(Cause.PRIVILEGE)
        assert unit.mregs[30] == 0x80   # EPC preserved
        assert unit.mregs[29] == 0x42   # info preserved

    def test_redispatch_outside_metal_rejected(self, unit):
        unit.delivery.route(Cause.PRIVILEGE, 0)
        with pytest.raises(MetalModeError):
            unit.redispatch(Cause.PRIVILEGE)

    def test_reset(self, unit):
        unit.delivery.route(Cause.ECALL, 0)
        unit.enter(0, 0)
        unit.reset()
        assert not unit.in_metal
        assert unit.delivery.handler_for(Cause.ECALL) is None


class TestDeliveryTable:
    def test_route_unroute(self):
        table = DeliveryTable()
        table.route(3, 7)
        assert table.handler_for(3) == 7
        table.unroute(3)
        assert table.handler_for(3) is None

    def test_require_handler(self):
        table = DeliveryTable()
        with pytest.raises(MetalError):
            table.require_handler(9)

    def test_routed_causes_sorted(self):
        table = DeliveryTable()
        table.route(9, 1)
        table.route(2, 1)
        assert table.routed_causes == [2, 9]


class TestInterceptTable:
    def test_wildcard_matches_all_funct3(self):
        table = InterceptTable()
        table.enable(pack_intercept_spec(OP_LOAD), entry=3)
        lw = 0x0002A303    # funct3=2
        lb = lw & ~0x7000  # funct3=0
        assert table.match(lw) == 3
        assert table.match(lb) == 3

    def test_exact_beats_wildcard(self):
        table = InterceptTable()
        table.enable(pack_intercept_spec(OP_LOAD), entry=1)
        table.enable(pack_intercept_spec(OP_LOAD, funct3=2), entry=2)
        lw = 0x0002A303
        assert table.match(lw) == 2

    def test_non_matching_opcode(self):
        table = InterceptTable()
        table.enable(pack_intercept_spec(OP_STORE), entry=1)
        assert table.match(0x0002A303) is None

    def test_disable(self):
        table = InterceptTable()
        spec = pack_intercept_spec(OP_LOAD, funct3=2)
        table.enable(spec, entry=1)
        table.disable(spec)
        assert table.match(0x0002A303) is None
        assert table.empty

    def test_cam_capacity(self):
        table = InterceptTable(slots=2)
        table.enable(pack_intercept_spec(0x03, 0), 1)
        table.enable(pack_intercept_spec(0x03, 1), 1)
        with pytest.raises(InterceptError):
            table.enable(pack_intercept_spec(0x03, 2), 1)

    def test_reenable_same_key_not_counted_twice(self):
        table = InterceptTable(slots=1)
        spec = pack_intercept_spec(0x03, 2)
        table.enable(spec, 1)
        table.enable(spec, 2)  # update in place
        assert table.match(0x0002A303) == 2

    def test_hit_counter(self):
        table = InterceptTable()
        table.enable(pack_intercept_spec(OP_LOAD), 1)
        table.match(0x0002A303)
        table.match(0x0002A303)
        assert table.hits == 2
