"""Encoder/decoder unit tests: field layouts, ranges, errors."""

import pytest

from repro.errors import DecodeError, EncodeError
from repro.isa import decode, encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import SPECS, TABLE1_MNEMONICS


def enc(mnemonic, **fields):
    return encode(Instruction(mnemonic, spec=SPECS[mnemonic], **fields))


class TestRFormat:
    def test_add_fields(self):
        word = enc("add", rd=1, rs1=2, rs2=3)
        instr = decode(word)
        assert (instr.mnemonic, instr.rd, instr.rs1, instr.rs2) == ("add", 1, 2, 3)

    def test_sub_distinguished_by_funct7(self):
        assert decode(enc("sub", rd=5, rs1=6, rs2=7)).mnemonic == "sub"
        assert decode(enc("add", rd=5, rs1=6, rs2=7)).mnemonic == "add"

    def test_muldiv_funct7(self):
        for m in ("mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"):
            assert decode(enc(m, rd=1, rs1=2, rs2=3)).mnemonic == m

    def test_register_out_of_range(self):
        with pytest.raises(EncodeError):
            enc("add", rd=32, rs1=0, rs2=0)


class TestIFormat:
    def test_addi_positive_imm(self):
        instr = decode(enc("addi", rd=10, rs1=11, imm=2047))
        assert instr.imm == 2047

    def test_addi_negative_imm(self):
        instr = decode(enc("addi", rd=10, rs1=11, imm=-2048))
        assert instr.imm == -2048

    def test_addi_imm_overflow(self):
        with pytest.raises(EncodeError):
            enc("addi", rd=1, rs1=1, imm=2048)
        with pytest.raises(EncodeError):
            enc("addi", rd=1, rs1=1, imm=-2049)

    def test_shift_shamt(self):
        instr = decode(enc("srai", rd=1, rs1=2, imm=31))
        assert instr.mnemonic == "srai"
        assert instr.imm == 31

    def test_shift_shamt_range(self):
        with pytest.raises(EncodeError):
            enc("slli", rd=1, rs1=2, imm=32)

    def test_srli_vs_srai(self):
        assert decode(enc("srli", rd=1, rs1=2, imm=4)).mnemonic == "srli"
        assert decode(enc("srai", rd=1, rs1=2, imm=4)).mnemonic == "srai"

    def test_load_offsets(self):
        for m in ("lb", "lh", "lw", "lbu", "lhu"):
            instr = decode(enc(m, rd=4, rs1=5, imm=-4))
            assert instr.mnemonic == m
            assert instr.imm == -4


class TestSBFormats:
    def test_store_imm_split(self):
        instr = decode(enc("sw", rs1=2, rs2=3, imm=-4))
        assert (instr.rs1, instr.rs2, instr.imm) == (2, 3, -4)

    def test_branch_offset_range(self):
        instr = decode(enc("beq", rs1=1, rs2=2, imm=4094))
        assert instr.imm == 4094
        instr = decode(enc("bne", rs1=1, rs2=2, imm=-4096))
        assert instr.imm == -4096

    def test_branch_odd_offset_rejected(self):
        with pytest.raises(EncodeError):
            enc("beq", rs1=1, rs2=2, imm=3)

    def test_all_branches_decode(self):
        for m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            assert decode(enc(m, rs1=8, rs2=9, imm=64)).mnemonic == m


class TestUJFormats:
    def test_lui_preshifted(self):
        instr = decode(enc("lui", rd=7, imm=0xABCDE000))
        assert instr.imm == 0xABCDE000

    def test_lui_raw_field(self):
        instr = decode(enc("lui", rd=7, imm=0xFFFFF))
        assert instr.imm == 0xFFFFF000

    def test_auipc(self):
        assert decode(enc("auipc", rd=3, imm=0x1000)).mnemonic == "auipc"

    def test_jal_range(self):
        instr = decode(enc("jal", rd=1, imm=(1 << 20) - 2))
        assert instr.imm == (1 << 20) - 2
        instr = decode(enc("jal", rd=1, imm=-(1 << 20)))
        assert instr.imm == -(1 << 20)

    def test_jal_overflow(self):
        with pytest.raises(EncodeError):
            enc("jal", rd=1, imm=1 << 20)


class TestSystem:
    def test_funct12_discrimination(self):
        for m in ("ecall", "ebreak", "mret", "wfi", "halt"):
            assert decode(enc(m)).mnemonic == m

    def test_csr_number(self):
        instr = decode(enc("csrrw", rd=1, rs1=2, imm=0x305, csr=0x305))
        assert instr.csr == 0x305

    def test_csr_immediate_variant(self):
        instr = decode(enc("csrrsi", rd=1, rs1=5, imm=0x300, csr=0x300))
        assert instr.rs1 == 5  # zimm in the rs1 field


class TestMetalEncodings:
    def test_table1_instructions_all_encode(self):
        for m in TABLE1_MNEMONICS:
            spec = SPECS[m]
            assert spec is not None

    def test_menter_entry_number(self):
        instr = decode(enc("menter", imm=63))
        assert instr.imm == 63
        assert instr.spec.metal_only is False

    def test_mexit_is_metal_only(self):
        assert decode(enc("mexit")).spec.metal_only is True

    def test_rmr_wmr_mreg_fields(self):
        instr = decode(enc("rmr", rd=10, rs1=31))
        assert (instr.rd, instr.rs1) == (10, 31)
        instr = decode(enc("wmr", rd=0, rs1=10))
        assert (instr.rd, instr.rs1) == (0, 10)

    def test_mld_mst(self):
        instr = decode(enc("mld", rd=4, rs1=0, imm=128))
        assert instr.imm == 128
        instr = decode(enc("mst", rs1=0, rs2=4, imm=-8))
        assert instr.imm == -8

    def test_arch_feature_instructions_decode(self):
        for m in ("mtlbw", "mtlbi", "mtlbf", "masid", "mpkr", "mpgon",
                  "micept", "miceptd", "mivec", "mintc", "mipend", "miack",
                  "mraise", "mgprr", "mgprw"):
            instr = decode(enc(m, rd=1, rs1=2, rs2=3))
            assert instr.mnemonic == m
            assert instr.spec.metal_only

    def test_mpld_mpst(self):
        assert decode(enc("mpld", rd=1, rs1=2, imm=4)).mnemonic == "mpld"
        assert decode(enc("mpst", rs1=2, rs2=3, imm=4)).mnemonic == "mpst"


class TestDecodeErrors:
    def test_garbage_word(self):
        with pytest.raises(DecodeError):
            decode(0xFFFFFFFF)

    def test_zero_word(self):
        with pytest.raises(DecodeError):
            decode(0)

    def test_unknown_funct12(self):
        # SYSTEM funct3=0 with unassigned funct12
        with pytest.raises(DecodeError):
            decode((0x123 << 20) | 0x73)

    def test_error_carries_word(self):
        try:
            decode(0xFFFFFFFF)
        except DecodeError as exc:
            assert exc.word == 0xFFFFFFFF
