"""MAS (Mcode Analysis Suite) tests.

Three layers:

* a seeded-bug corpus — known-bad mroutines, each caught by the *right*
  pass at the *right* word;
* no-false-positives — every bundled mcode application lints clean
  (zero error diagnostics) under the strict :data:`LINT_CONFIG`;
* the purity handoff — facts flow loader → image → translation cache,
  the unguarded mram loop engages, and it is guest-invisible
  (bit-identical architectural results with it on or off).
"""

import pytest

from repro import build_metal_machine
from repro.analysis import (
    AnalysisConfig,
    LINT_CONFIG,
    Purity,
    analyze_routine,
    check_image_mregs,
)
from repro.analysis.lint import APPS, lint_main, lint_routines
from repro.errors import MroutineVerifyError
from repro.metal import MRoutine, load_mroutines
from repro.metal.verifier import verify_mroutine, verify_or_raise


def routine(name="r", entry=0, source="    mexit\n", **kw):
    return MRoutine(name=name, entry=entry, source=source, **kw)


def lint_one(source, **kw):
    """Assemble one routine into a fresh image and lint it."""
    results, extra = lint_routines([routine(source=source, **kw)])
    (result,) = results.values()
    return result


def diag_mnemonics(result):
    """pass_name/severity/anchored-mnemonic triples for assertion."""
    out = []
    for d in result.diagnostics:
        instr = (result.cfg.instrs[d.word_index]
                 if 0 <= d.word_index < len(result.cfg.instrs) else None)
        out.append((d.pass_name, d.severity,
                    instr.mnemonic if instr is not None else None))
    return out


# ---------------------------------------------------------------------------
# Seeded-bug corpus: each entry is (source, declarations, expected pass,
# expected severity, mnemonic at the reported word, message fragment).
# ---------------------------------------------------------------------------

CORPUS = [
    pytest.param(
        "    add a0, a0, a1\n", {},
        "exit", "error", "add", "no mexit/mraise",
        id="no-exit-anywhere"),
    pytest.param(
        "    bnez a0, skip\n    mexit\nskip:\n    add a0, a0, a1\n", {},
        "exit", "error", "add", "falls off the end",
        id="fall-off-branch-arm"),
    pytest.param(
        "loop:\n    addi a0, a0, 1\n    j loop\n    mexit\n", {},
        "exit", "error", "jal", "no mexit/mraise reachable",
        id="infinite-loop"),
    pytest.param(
        "    .word 0xffffffff\n    mexit\n", {},
        "structure", "error", None, "undecodable word",
        id="undecodable-word"),
    pytest.param(
        "    ecall\n    mexit\n", {},
        "structure", "error", "ecall", "illegal in mcode",
        id="forbidden-ecall"),
    pytest.param(
        "    mret\n    mexit\n", {},
        "structure", "error", "mret", "illegal in mcode",
        id="forbidden-mret"),
    pytest.param(
        "    menter 0\n    mexit\n", {},
        "structure", "error", "menter", "nested menter",
        id="nested-menter"),
    pytest.param(
        "    jalr x0, 0(x1)\n    mexit\n", {},
        "structure", "error", "jalr", "allow_dynamic_jumps",
        id="undeclared-jalr"),
    pytest.param(
        "    beq x0, x0, 64\n    mexit\n", {},
        "structure", "error", "beq", "escapes the routine",
        id="escaping-branch"),
    pytest.param(
        "    jal x0, 1024\n    mexit\n", {},
        "structure", "error", "jal", "escapes the routine",
        id="escaping-jal"),
    pytest.param(
        "    li   t0, 0x10000\n    mld  a0, 0(t0)\n    mexit\n",
        {"data_words": 1},
        "bounds", "error", "mld", "outside the allowed data ranges",
        id="const-oob-computed-mld"),
    pytest.param(
        "    mst  a0, 64(x0)\n    mexit\n", {"data_words": 1},
        "bounds", "error", "mst", "outside the routine's allowed data",
        id="const-oob-offset-mst"),
    pytest.param(
        "    li   t0, 0x4000\n    andi t1, a0, 3\n    add  t2, t0, t1\n"
        "    mld  a0, 0(t2)\n    mexit\n", {"data_words": 1},
        "bounds", "error", "mld", "entirely outside",
        id="interval-oob-mld"),
    pytest.param(
        "    wmr  m31, a0\n    wmr  m31, a1\n    mexit\n", {},
        "mreg", "error", "wmr", "overwritten on every path",
        id="m31-dead-store"),
    pytest.param(
        "    wmr  m5, a0\n    mexit\n", {},
        "mreg", "error", "wmr", "writes m5 without declaring",
        id="undeclared-mreg-write"),
    pytest.param(
        "    rmr  a0, m7\n    mexit\n", {},
        "mreg", "error", "rmr", "reads m7 without declaring",
        id="undeclared-mreg-read"),
    pytest.param(
        "    mexit\n    add a0, a0, a1\n", {},
        "exit", "warn", "add", "unreachable code",
        id="dead-code-warns"),
    pytest.param(
        "loop:\n    addi a0, a0, -1\n    bnez a0, loop\n    mexit\n", {},
        "budget", "warn", "bne", "cannot be bounded",
        id="loop-unbounded-warns"),
]


class TestSeededCorpus:
    @pytest.mark.parametrize(
        "source,decl,pass_name,severity,mnemonic,fragment", CORPUS)
    def test_caught_by_the_right_pass(self, source, decl, pass_name,
                                      severity, mnemonic, fragment):
        result = lint_one(source, **decl)
        matches = [d for d in result.diagnostics
                   if d.pass_name == pass_name and d.severity == severity
                   and fragment in d.message]
        assert matches, (
            f"expected a {severity}[{pass_name}] mentioning {fragment!r}, "
            f"got {[(d.pass_name, d.severity, d.message) for d in result.diagnostics]}")
        d = matches[0]
        instr = result.cfg.instrs[d.word_index]
        if mnemonic is None:
            assert instr is None          # anchored at the undecodable word
            assert d.raw is not None
        else:
            assert instr.mnemonic == mnemonic
            assert d.disasm and d.disasm.startswith(mnemonic)

    def test_empty_routine(self):
        result = analyze_routine(routine(source=""), config=LINT_CONFIG)
        assert [d.pass_name for d in result.errors] == ["structure"]
        assert "empty routine" in result.errors[0].message

    def test_over_budget_loop_free(self):
        body = "    addi a0, a0, 1\n" * 6 + "    mexit\n"
        r = routine(source=body)
        load_mroutines([r], verify=False)
        result = analyze_routine(
            r, allowed_data_ranges=[(0, 0)],
            config=AnalysisConfig(name="tiny", cycle_budget=4))
        assert any(d.pass_name == "budget" and d.is_error
                   for d in result.diagnostics)
        assert result.facts.max_path_instructions == 7

    def test_witness_traces_a_path(self):
        result = lint_one(
            "    bnez a0, skip\n    mexit\nskip:\n    add a0, a0, a1\n")
        (d,) = [d for d in result.errors if d.pass_name == "exit"]
        assert d.witness is not None and d.witness[0] == 0


class TestBoundsProofs:
    def test_masked_index_proven_in_bounds(self):
        result = lint_one(
            "    andi t0, a0, 60\n    mld  a0, 0(t0)\n    mexit\n",
            data_words=16)
        assert not [d for d in result.diagnostics if d.pass_name == "bounds"]
        assert result.facts.proven_accesses == 1
        assert result.facts.unproven_accesses == 0

    def test_unknown_address_warns_only(self):
        result = lint_one("    mld  a0, 0(a1)\n    mexit\n", data_words=1)
        bounds = [d for d in result.diagnostics if d.pass_name == "bounds"]
        assert len(bounds) == 1 and not bounds[0].is_error
        assert result.facts.unproven_accesses == 1

    def test_shared_data_extends_the_ranges(self):
        results, _ = lint_routines([
            routine("a", 0, "    mexit\n", data_words=4),
            routine("b", 1, "    mld a0, 0(x0)\n    mexit\n",
                    shared_data=("a",)),
        ])
        assert results["b"].ok
        assert results["b"].facts.proven_accesses == 1


class TestMregImageCheck:
    def test_read_never_written_warns(self):
        results, extra = lint_routines([
            routine("w", 0, "    rmr a0, m3\n    mexit\n", mregs=(3,)),
        ])
        assert any("no routine in the image ever writes" in d.message
                   for d in extra)

    def test_written_somewhere_is_quiet(self):
        results, extra = lint_routines([
            routine("w", 0, "    wmr m3, a0\n    mexit\n", shared_mregs=(3,)),
            routine("r", 1, "    rmr a0, m3\n    mexit\n", shared_mregs=(3,)),
        ])
        assert extra == []

    def test_check_image_mregs_direct(self):
        r = routine("solo", 0, "    rmr a0, m2\n    mexit\n", mregs=(2,))
        load_mroutines([r], verify=False)
        result = analyze_routine(r, allowed_data_ranges=[(0, 0)])
        diags = check_image_mregs({"solo": result})
        assert diags and all(not d.is_error for d in diags)


class TestNoFalsePositives:
    """Every bundled application must lint clean: zero error diagnostics."""

    @pytest.mark.parametrize("app", sorted(APPS))
    def test_app_lints_clean(self, app):
        results, extra = lint_routines(APPS[app]())
        errors = [d for r in results.values() for d in r.errors]
        errors += [d for d in extra if d.is_error]
        assert errors == [], [(d.routine, d.word_index, d.message)
                              for d in errors]

    def test_lint_cli_apps_exits_zero(self, capsys):
        assert lint_main(["--apps"]) == 0
        out = capsys.readouterr().out
        assert "(ok)" in out and "FAILED" not in out

    def test_lint_cli_requires_a_target(self, capsys):
        assert lint_main([]) == 2


class TestVerifierFacade:
    """Satellite: the historical verifier surface, now backed by MAS."""

    def test_verify_report_legacy_strings(self):
        r = routine(source="    add a0, a0, a1\n")
        load_mroutines([r], verify=False)
        report = verify_mroutine(r, allowed_data_ranges=[(0, 0)])
        assert not report.ok
        assert any(p.startswith("[word ") and "no mexit" in p
                   for p in report.problems)

    def test_verify_error_carries_context(self):
        r = routine(name="ctx", source="    ecall\n    mexit\n")
        load_mroutines([r], verify=False)
        with pytest.raises(MroutineVerifyError) as exc_info:
            verify_or_raise(r, allowed_data_ranges=[(0, 0)])
        exc = exc_info.value
        assert exc.routine == "ctx"
        assert exc.word_index == 0
        assert exc.word is not None
        assert exc.disasm and exc.disasm.startswith("ecall")
        assert "ctx" in str(exc)

    def test_loader_rejects_bad_routine_with_context(self):
        with pytest.raises(MroutineVerifyError) as exc_info:
            load_mroutines([routine(source="    add a0, a0, a1\n")])
        assert exc_info.value.word_index is not None


SPIN = """
spin_entry:
    li   t0, 40
spin_loop:
    addi t0, t0, -1
    bnez t0, spin_loop
    mexit
"""

STORE_SPIN = """
spin_entry:
    li   t0, 40
    li   t1, 0x7000
spin_loop:
    sw   t0, 0(t1)
    addi t0, t0, -1
    bnez t0, spin_loop
    mexit
"""

DRIVER = """
_start:
    li   s0, 20
again:
    menter MR_SPIN
    addi s0, s0, -1
    bnez s0, again
    halt
"""


def spin_machine(source=SPIN):
    return build_metal_machine([routine("spin", 1, source)])


class TestPurityFacts:
    def test_pure_routine_classified(self):
        image = load_mroutines([routine("spin", 1, SPIN)])
        facts = image.routines["spin"].facts
        assert facts.purity is Purity.PURE
        assert facts.pure_dispatch
        assert facts.has_loops
        spin = image.routines["spin"]
        assert image.nonstore_code_ranges() == [
            (0, 4 * len(spin.code_words))]

    def test_ram_store_blocks_pure_dispatch(self):
        image = load_mroutines([routine("spin", 1, STORE_SPIN)])
        facts = image.routines["spin"].facts
        assert facts.purity is Purity.WRITES_RAM
        assert not facts.pure_dispatch
        assert image.nonstore_code_ranges() == []

    def test_ram_load_classified(self):
        image = load_mroutines([routine(
            "peek", 1, "    li t0, 0x7000\n    lw a0, 0(t0)\n    mexit\n")])
        assert image.routines["peek"].facts.purity is Purity.READS_RAM

    def test_mram_only_classified(self):
        image = load_mroutines([routine(
            "bump", 1,
            "    mld t0, BUMP_DATA(x0)\n    addi t0, t0, 1\n"
            "    mst t0, BUMP_DATA(x0)\n    mexit\n", data_words=1)])
        facts = image.routines["bump"].facts
        assert facts.purity is Purity.MRAM_ONLY
        assert facts.pure_dispatch        # mram data writes cannot
        # invalidate translations, so the unguarded loop stays safe.


class TestTcachePureLoop:
    def test_pure_loop_engages(self):
        m = spin_machine()
        m.load_and_run(DRIVER)
        tc = m.perf.tcache
        assert tc.pure_blocks > 0
        assert tc.pure_fast_instructions > 0

    def test_guest_invisible_bit_identical(self):
        runs = {}
        for enabled in (True, False):
            m = spin_machine()
            m.set_tcache_pure_loop(enabled)
            m.load_and_run(DRIVER)
            runs[enabled] = (m.instret, m.cycles, m.reg("s0"))
        assert runs[True] == runs[False]
        # the pure loop only runs when enabled
        m = spin_machine()
        m.set_tcache_pure_loop(False)
        m.load_and_run(DRIVER)
        assert m.perf.tcache.pure_fast_instructions == 0

    def test_impure_routine_not_dispatched_pure(self):
        m = spin_machine(STORE_SPIN)
        m.load_and_run(DRIVER)
        assert m.perf.tcache.pure_blocks == 0
        assert m.perf.tcache.pure_fast_instructions == 0
        assert m.read_word(0x7000) == 1   # the store really happened

    def test_reload_drops_stale_purity(self):
        m = spin_machine()
        m.load_and_run(DRIVER)
        assert m.perf.tcache.pure_blocks > 0
        m.reload_mroutines([routine("spin", 1, STORE_SPIN)])
        assert m.metal_image.nonstore_code_ranges() == []
        before = m.perf.tcache.pure_blocks
        m.reset()
        m.load_and_run(DRIVER)
        assert m.perf.tcache.pure_blocks == before
        assert m.read_word(0x7000) == 1
