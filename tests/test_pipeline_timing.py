"""Pipeline timing model tests: CPI, hazards, and §2.2 transition costs."""

import pytest

from repro import (
    MachineConfig,
    MRoutine,
    TimingModel,
    build_metal_machine,
    build_trap_machine,
)


def fast_mem_trap_machine():
    """Pipeline trap machine with single-cycle memory, so stage behaviour
    (not memory latency) dominates the microtests."""
    return build_trap_machine(config=MachineConfig(
        engine="pipeline", with_caches=False,
        timing=TimingModel(mem_latency=1),
    ))


def cycles_for(machine, source, **kw):
    machine.load_and_run(source, **kw)
    return machine.cycles, machine.instret


class TestIdealCpi:
    def test_independent_alu_chain_is_cpi_one(self):
        m = fast_mem_trap_machine()
        body = "\n".join(f"    addi x{5 + (i % 8)}, zero, {i}" for i in range(64))
        cycles, instret = cycles_for(m, f"_start:\n{body}\n    halt\n")
        # fill + drain of a 5-stage pipe, then 1 IPC
        assert cycles <= instret + 8

    def test_dependent_alu_chain_still_cpi_one_with_forwarding(self):
        m = fast_mem_trap_machine()
        body = "\n".join("    addi t0, t0, 1" for _ in range(64))
        cycles, instret = cycles_for(m, f"_start:\n{body}\n    halt\n")
        assert cycles <= instret + 8


class TestHazards:
    def _cycles(self, body, n=32):
        m = fast_mem_trap_machine()
        src = f"_start:\n    li t3, 0x2000\n{body * n}    halt\n"
        m.load_and_run(src)
        return m.cycles

    def test_load_use_stalls_one_cycle(self):
        # load followed immediately by a consumer vs. with a spacer
        tight = self._cycles("    lw t0, 0(t3)\n    addi t1, t0, 1\n    nop\n")
        spaced = self._cycles("    lw t0, 0(t3)\n    nop\n    addi t1, t0, 1\n")
        assert tight > spaced
        assert tight - spaced == 32  # one bubble per pair

    def test_taken_branch_costs_more_than_not_taken(self):
        m1 = build_trap_machine(engine="pipeline", with_caches=False)
        m1.load_and_run("""
_start:
    li   t0, 64
loop:
    addi t0, t0, -1
    bnez t0, loop          # taken 63 times
    halt
""")
        m2 = build_trap_machine(engine="pipeline", with_caches=False)
        m2.load_and_run("""
_start:
    li   t0, 64
loop:
    addi t0, t0, -1
    beqz t0, out           # not taken 63 times
    j    loop
out:
    halt
""")
        # both run similar instruction counts; the not-taken variant pays
        # for the extra j, so compare per-instruction cost of the branchy one
        assert m1.cycles / m1.instret > 1.0

    def test_muldiv_latency_visible(self):
        mul = self._cycles("    mul t0, t1, t2\n")
        add = self._cycles("    add t0, t1, t2\n")
        assert mul > add

    def test_icache_misses_slow_first_pass(self):
        m = build_trap_machine(engine="pipeline", with_caches=True)
        body = "\n".join("    addi t0, t0, 1" for _ in range(64))
        src = f"""
_start:
    li   t1, 2
outer:
{body}
    addi t1, t1, -1
    bnez t1, outer
    halt
"""
        m.load_and_run(src)
        stats = m.core.icache.stats
        assert stats.misses > 0
        assert stats.hits > stats.misses  # second pass hits


class TestMetalTransitions:
    def _noop_machine(self, engine="pipeline", **timing_kw):
        from repro import TimingModel, MachineConfig

        cfg = MachineConfig(engine=engine, with_caches=False,
                            timing=TimingModel(**timing_kw))
        return build_metal_machine(
            [MRoutine(name="noop", entry=0, source="mexit\n")], config=cfg,
        )

    CALL_LOOP = """
_start:
    li   s0, 200
loop:
    menter MR_NOOP
    addi s0, s0, -1
    bnez s0, loop
    halt
"""
    EMPTY_LOOP = """
_start:
    li   s0, 200
loop:
    nop
    addi s0, s0, -1
    bnez s0, loop
    halt
"""

    def test_decode_replacement_is_nearly_free(self):
        m_call = self._noop_machine()
        m_call.load_and_run(self.CALL_LOOP)
        m_empty = self._noop_machine()
        m_empty.load_and_run(self.EMPTY_LOOP)
        # menter+mexit (2 instructions) replace one nop: per iteration the
        # difference must be ~1 cycle (the extra instruction slot), i.e.
        # the transition itself adds no bubbles (paper §2.2).
        per_iter = (m_call.cycles - m_empty.cycles) / 200
        assert per_iter <= 1.5

    def test_disabling_replacement_costs_redirects(self):
        fast = self._noop_machine()
        fast.load_and_run(self.CALL_LOOP)
        slow = self._noop_machine(decode_replacement=False)
        slow.load_and_run(self.CALL_LOOP)
        assert slow.cycles > fast.cycles
        # two redirects per iteration, transition_redirect = 2 cycles each
        per_iter = (slow.cycles - fast.cycles) / 200
        assert per_iter >= 2

    def test_functional_and_pipeline_agree_on_ordering(self):
        for engine in ("functional", "pipeline"):
            fast = self._noop_machine(engine=engine)
            fast.load_and_run(self.CALL_LOOP)
            slow = self._noop_machine(engine=engine, decode_replacement=False)
            slow.load_and_run(self.CALL_LOOP)
            assert slow.cycles > fast.cycles

    def test_stall_accounting_exposed(self):
        m = build_trap_machine(engine="pipeline", with_caches=False)
        m.load_and_run("""
_start:
    li   t3, 0x2000
    lw   t0, 0(t3)
    addi t1, t0, 1
    halt
""")
        load_use, control, fetch = m.sim.stalls
        assert load_use >= 1
