"""Interrupt delivery on both machines, WFI, non-interruptible mroutines."""

import pytest

from repro import MRoutine, build_metal_machine, build_trap_machine
from repro.cpu.exceptions import Cause


def metal_with_irq_handler(extra_source="", count_addr=0x3F00):
    """Metal machine whose timer interrupt increments a counter."""
    handler = MRoutine(name="tick", entry=0, source=f"""
        wmr  m10, t0
        wmr  m11, t1
        li   t0, {count_addr:#x}
        mpld t1, 0(t0)
        addi t1, t1, 1
        mpst t1, 0(t0)
        # stop the timer interrupt (write CTRL=0) so it does not refire
        li   t0, TIMER_CTRL
        mpst zero, 0(t0)
        {extra_source}
        rmr  t1, m11
        rmr  t0, m10
        mexit
    """, mregs=(10, 11))
    enable = MRoutine(name="irq_on", entry=1, source="""
        li   t0, CAUSE_INTERRUPT_TIMER
        li   t1, MR_TICK
        mivec t0, t1
        li   t0, 1
        mintc t0
        mexit
    """)
    return build_metal_machine([handler, enable], with_caches=False)


class TestMetalInterrupts:
    def test_timer_interrupt_delivered_to_mroutine(self):
        m = metal_with_irq_handler()
        m.timer.compare = 200
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    menter MR_IRQ_ON
spin:
    li   t2, 0x3F00
    lw   t3, 0(t2)
    beqz t3, spin
    halt
""", max_instructions=100_000)
        assert m.read_word(0x3F00) == 1
        assert m.core.metal.stats.deliveries.get(Cause.interrupt(0)) == 1

    def test_interrupts_masked_without_mintc(self):
        m = metal_with_irq_handler()
        m.route_cause(Cause.interrupt(0), "tick")
        # interrupts NOT enabled: deliveries never happen
        m.timer.compare = 10
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    li   t0, 500
spin:
    addi t0, t0, -1
    bnez t0, spin
    halt
""", max_instructions=10_000)
        assert m.read_word(0x3F00) == 0

    def test_mroutines_are_not_interruptible(self):
        # An mroutine spinning while an interrupt is pending must finish
        # before delivery (paper §2.1).
        spin = MRoutine(name="spin", entry=2, source="""
            li   t5, 300
sloop:
            addi t5, t5, -1
            bnez t5, sloop
            li   t6, 1         # marker: mroutine completed
            mexit
        """)
        handler = MRoutine(name="tick", entry=0, source="""
            # handler observes t6: must be 1 if mroutine finished first
            mv   t4, t6
            li   t0, TIMER_CTRL
            mpst zero, 0(t0)
            mexit
        """)
        enable = MRoutine(name="irq_on", entry=1, source="""
            li   t0, CAUSE_INTERRUPT_TIMER
            li   t1, MR_TICK
            mivec t0, t1
            li   t0, 1
            mintc t0
            mexit
        """)
        m = build_metal_machine([spin, handler, enable], with_caches=False)
        m.timer.compare = 100  # fires while `spin` runs (spin ≈ cycles 30-900)
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    menter MR_IRQ_ON
    menter MR_SPIN
    nop
    nop
    halt
""", max_instructions=10_000)
        assert m.reg("t4") == 1  # delivery happened after the mroutine

    def test_wfi_wakes_on_interrupt(self):
        m = metal_with_irq_handler()
        m.timer.compare = 400
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    menter MR_IRQ_ON
    wfi
    li   a0, 1
    halt
""", max_instructions=10_000)
        assert m.reg("a0") == 1
        assert m.read_word(0x3F00) == 1
        # the machine slept: cycles >= the timer compare value
        assert m.cycles >= 400


class TestTrapInterrupts:
    def test_timer_interrupt_to_mtvec(self):
        m = build_trap_machine(with_caches=False)
        m.timer.compare = 150
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    li   t0, handler
    csrrw zero, CSR_MTVEC, t0
    li   t0, MSTATUS_MIE
    csrrs zero, CSR_MSTATUS, t0
spin:
    j    spin
handler:
    csrrs a0, CSR_MCAUSE, zero
    halt
""", max_instructions=10_000)
        assert m.reg("a0") == 16  # INTERRUPT_BASE + timer line 0

    def test_interrupts_respect_mie(self):
        m = build_trap_machine(with_caches=False)
        m.timer.compare = 10
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    li   t0, handler
    csrrw zero, CSR_MTVEC, t0
    li   t0, 300
spin:
    addi t0, t0, -1
    bnez t0, spin
    li   a0, 7
    halt
handler:
    li   a0, 1
    halt
""", max_instructions=10_000)
        assert m.reg("a0") == 7  # never delivered: MIE clear

    def test_mret_restores_interrupted_context(self):
        m = build_trap_machine(with_caches=False)
        m.timer.compare = 100
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    li   t0, handler
    csrrw zero, CSR_MTVEC, t0
    li   t0, MSTATUS_MIE
    csrrs zero, CSR_MSTATUS, t0
    li   a0, 0
spin:
    addi a0, a0, 1
    li   t1, 100000
    bltu a0, t1, spin
    halt
handler:
    # stop the timer and return to the loop
    li   t2, TIMER_CTRL
    sw   zero, 0(t2)
    li   a1, 1
    mret
""", max_instructions=1_000_000)
        assert m.reg("a1") == 1           # handler ran
        assert m.reg("a0") == 100000      # loop completed afterwards


class TestDeferredInterrupts:
    """An interrupt arriving mid-mroutine is deferred, observable via
    DeliveryTable.deferred, and delivered after mexit — including when a
    snapshot is taken at the deferred point and later restored."""

    def _machine_mid_spin(self):
        """Run until the timer interrupt is pending while an mroutine is
        executing; returns the machine parked at that point."""
        spin = MRoutine(name="spin", entry=2, source="""
            li   t5, 300
sloop:
            addi t5, t5, -1
            bnez t5, sloop
            li   t6, 1
            mexit
        """)
        tick = MRoutine(name="tick", entry=0, source="""
            wmr  m10, t0
            wmr  m11, t1
            li   t0, 0x3F00
            mpld t1, 0(t0)
            addi t1, t1, 1
            mpst t1, 0(t0)
            li   t0, TIMER_CTRL
            mpst zero, 0(t0)
            rmr  t1, m11
            rmr  t0, m10
            mexit
        """, mregs=(10, 11))
        irq_on = MRoutine(name="irq_on", entry=1, source="""
            li   t0, CAUSE_INTERRUPT_TIMER
            li   t1, MR_TICK
            mivec t0, t1
            li   t0, 1
            mintc t0
            mexit
        """)
        m = build_metal_machine([spin, tick, irq_on], with_caches=False)
        m.timer.compare = 100
        m.timer.irq_enabled = True
        program = m.assemble("""
_start:
    menter MR_IRQ_ON
    menter MR_SPIN
    nop
    halt
""", base=0x1000)
        m.load(program)
        m.core.pc = 0x1000
        for _ in range(5_000):
            m.run(max_instructions=1, raise_on_limit=False)
            if m.core.in_metal and (m.irq.pending_bitmap() & 1):
                return m
        pytest.fail("timer interrupt never observed mid-mroutine")

    def test_deferred_mid_mroutine_then_delivered_after_mexit(self):
        m = self._machine_mid_spin()
        deferred = m.core.metal.delivery.deferred
        assert Cause.interrupt(0) in deferred
        assert deferred == m.core.metal.delivery.pending_routed
        m.run(max_instructions=10_000, raise_on_limit=False)
        assert m.core.halted
        assert m.reg("t6") == 1               # mroutine ran to completion
        assert m.read_word(0x3F00) == 1       # then the handler fired once
        assert m.core.metal.delivery.deferred == ()

    def test_deferred_interrupt_survives_snapshot_restore(self):
        from repro.machine.snapshot import restore_snapshot, take_snapshot

        m = self._machine_mid_spin()
        assert Cause.interrupt(0) in m.core.metal.delivery.deferred
        snap = take_snapshot(m)

        # First continuation: deferral drains after mexit.
        m.run(max_instructions=10_000, raise_on_limit=False)
        assert m.core.halted and m.read_word(0x3F00) == 1

        # Restore to the deferred point.  Device state is deliberately
        # outside the snapshot (the handler already quiesced the timer),
        # so the host re-arms the level-triggered source, as a
        # checkpoint-restoring host would re-drive its devices.
        restore_snapshot(m, snap)
        assert not m.core.halted and m.core.in_metal
        m.timer.irq_enabled = True        # count is far past compare
        assert Cause.interrupt(0) in m.core.metal.delivery.deferred

        # Second continuation behaves identically: no interrupt lost.
        m.run(max_instructions=10_000, raise_on_limit=False)
        assert m.core.halted
        assert m.reg("t6") == 1
        assert m.read_word(0x3F00) == 1
        assert m.core.metal.delivery.deferred == ()
