"""CSR file unit tests and SimpleTimer cost-model tests."""

import pytest

from repro.cpu.csr import (
    CSR_CYCLE,
    CSR_INSTRET,
    CSR_MCAUSE,
    CSR_MEPC,
    CSR_MSCRATCH,
    CSR_MSTATUS,
    CSR_MTVAL,
    CSR_MTVEC,
    CsrFile,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MSTATUS_MPP_M,
)
from repro.cpu.exceptions import TrapException
from repro.cpu.executor import StepInfo
from repro.cpu.functional import SimpleTimer
from repro.cpu.timing import TimingModel
from repro.isa.instruction import InstrClass


class TestCsrFile:
    def test_boot_state(self):
        csrs = CsrFile()
        assert csrs.mstatus & MSTATUS_MPP_M   # machine mode
        assert not csrs.interrupts_enabled

    def test_trap_enter_latches(self):
        csrs = CsrFile()
        csrs.mtvec = 0x800
        csrs.mstatus |= MSTATUS_MIE
        handler = csrs.trap_enter(pc=0x100, cause=5, info=0x42, in_user=True)
        assert handler == 0x800
        assert csrs.mepc == 0x100
        assert csrs.mcause == 5
        assert csrs.mtval == 0x42
        assert not csrs.interrupts_enabled     # MIE cleared
        assert csrs.mstatus & MSTATUS_MPIE     # previous MIE saved

    def test_trap_return_restores(self):
        csrs = CsrFile()
        csrs.mtvec = 0x800
        csrs.mstatus |= MSTATUS_MIE
        csrs.trap_enter(pc=0x100, cause=5, info=0, in_user=True)
        pc, to_user = csrs.trap_return()
        assert pc == 0x100
        assert to_user                        # MPP was user
        assert csrs.interrupts_enabled        # MPIE restored

    def test_trap_from_machine_returns_to_machine(self):
        csrs = CsrFile()
        csrs.mtvec = 0x800
        csrs.trap_enter(pc=0x100, cause=5, info=0, in_user=False)
        _, to_user = csrs.trap_return()
        assert not to_user

    def test_nested_trap_loses_interrupts_conservatively(self):
        csrs = CsrFile()
        csrs.mtvec = 0x800
        csrs.mstatus |= MSTATUS_MIE
        csrs.trap_enter(pc=0x100, cause=5, info=0, in_user=True)
        csrs.trap_enter(pc=0x200, cause=6, info=0, in_user=False)
        # the second trap saw MIE=0, so MPIE is now 0
        csrs.trap_return()
        assert not csrs.interrupts_enabled

    def test_generic_read_write(self):
        csrs = CsrFile()
        for csr in (CSR_MSTATUS, CSR_MTVEC, CSR_MSCRATCH, CSR_MEPC,
                    CSR_MCAUSE, CSR_MTVAL):
            csrs.write(csr, 0x1234)
            assert csrs.read(csr) in (0x1234, 0x1234 & ~0x3, 0x1234 & ~0x1)

    def test_mtvec_alignment_forced(self):
        csrs = CsrFile()
        csrs.write(CSR_MTVEC, 0x1003)
        assert csrs.read(CSR_MTVEC) == 0x1000

    def test_counters_read_only(self):
        csrs = CsrFile()
        assert csrs.read(CSR_CYCLE, cycles=77) == 77
        assert csrs.read(CSR_INSTRET, instret=9) == 9
        with pytest.raises(TrapException):
            csrs.write(CSR_CYCLE, 1)

    def test_unknown_csr_traps(self):
        csrs = CsrFile()
        with pytest.raises(TrapException):
            csrs.read(0x7C0)
        with pytest.raises(TrapException):
            csrs.write(0x7C0, 1)


def _step(**kw):
    defaults = dict(pc=0, next_pc=4, mnemonic="addi",
                    cls=InstrClass.ALU_IMM, fetch_latency=1)
    defaults.update(kw)
    return StepInfo(**defaults)


class TestSimpleTimer:
    def test_base_cost_is_fetch(self):
        t = SimpleTimer(TimingModel())
        t.note(_step(fetch_latency=1))
        assert t.cycles == 1
        t.note(_step(fetch_latency=21))
        assert t.cycles == 22

    def test_memory_excess_charged(self):
        t = SimpleTimer(TimingModel())
        t.note(_step(mnemonic="lw", cls=InstrClass.LOAD, mem_latency=21))
        assert t.cycles == 1 + 20

    def test_hit_memory_free(self):
        t = SimpleTimer(TimingModel())
        t.note(_step(mnemonic="lw", cls=InstrClass.LOAD, mem_latency=1))
        assert t.cycles == 1

    def test_control_penalties(self):
        timing = TimingModel()
        costs = {}
        for control in ("branch", "jal", "jalr", "mret", "menter",
                        "mexit", "mraise", None):
            t = SimpleTimer(timing)
            t.note(_step(control=control))
            costs[control] = t.cycles
        assert costs[None] == 1
        assert costs["branch"] == 1 + timing.branch_taken_penalty
        assert costs["jal"] == 1 + timing.jump_penalty
        assert costs["menter"] == 1  # decode replacement: free
        assert costs["mexit"] == 1

    def test_transition_costs_when_replacement_off(self):
        timing = TimingModel(decode_replacement=False)
        t = SimpleTimer(timing)
        t.note(_step(control="menter"))
        assert t.cycles == 1 + timing.transition_redirect

    def test_muldiv_extras(self):
        timing = TimingModel()
        t = SimpleTimer(timing)
        t.note(_step(mnemonic="mul", cls=InstrClass.MULDIV))
        assert t.cycles == 1 + timing.mul_extra
        t2 = SimpleTimer(timing)
        t2.note(_step(mnemonic="divu", cls=InstrClass.MULDIV))
        assert t2.cycles == 1 + timing.div_extra

    def test_trap_charges(self):
        timing = TimingModel()
        t = SimpleTimer(timing)
        t.note_trap(metal=True)
        assert t.cycles == timing.delivery_redirect
        t.note_trap(metal=False)
        assert t.cycles == timing.delivery_redirect + timing.trap_flush

    def test_timing_overrides(self):
        base = TimingModel()
        fast = base.with_overrides(mem_latency=1)
        assert fast.mem_latency == 1
        assert base.mem_latency == 20  # original untouched
