"""Hardware-cost model tests (paper Table 2)."""

import pytest

from repro.synthesis import (
    build_baseline_cpu,
    build_metal_cpu,
    build_metal_extension,
    generate_table2,
)
from repro.synthesis.components import Cost, adder, dff, mux2, muxn, sram_macro
from repro.synthesis.report import (
    PAPER_BASELINE_CELLS,
    PAPER_BASELINE_WIRES,
    PAPER_CELL_CHANGE,
    PAPER_WIRE_CHANGE,
)


class TestComponents:
    def test_cost_arithmetic(self):
        a = Cost(10, 20)
        b = Cost(1, 2)
        assert (a + b) == Cost(11, 22)
        assert (a * 3) == Cost(30, 60)

    def test_dff_scaling(self):
        assert dff(32).cells == 32
        assert dff(32).wires == 64

    def test_muxn_tree(self):
        assert muxn(8, 4).cells == 3 * mux2(8).cells

    def test_muxn_degenerate(self):
        assert muxn(32, 1) == Cost()

    def test_adder_linear(self):
        assert adder(64).cells == 2 * adder(32).cells

    def test_sram_monotone(self):
        assert sram_macro(2048).cells > sram_macro(1024).cells


class TestNetlist:
    def test_hierarchy_totals(self):
        from repro.synthesis.netlist import Module

        top = Module("top")
        top.add("x", Cost(5, 5))
        child = top.submodule("child")
        child.add("y", Cost(7, 9))
        assert top.total == Cost(12, 14)

    def test_breakdown_paths(self):
        cpu = build_baseline_cpu()
        paths = [p for p, _ in cpu.breakdown(depth=1)]
        assert "cpu/fetch" in paths
        assert "cpu/mmu" in paths

    def test_report_renders(self):
        text = build_metal_cpu().report(depth=1)
        assert "mram" not in text  # metal is a child module one level down
        assert "metal" in text


class TestTable2:
    def test_baseline_matches_paper_calibration(self):
        r = generate_table2()
        assert r.baseline_cells == pytest.approx(PAPER_BASELINE_CELLS, rel=0.002)
        assert r.baseline_wires == pytest.approx(PAPER_BASELINE_WIRES, rel=0.002)

    def test_metal_delta_reproduces_paper_shape(self):
        """The delta is a *prediction*: must land near +14-16% with the
        paper's ordering (wires grow more than cells)."""
        r = generate_table2()
        assert 12.0 <= r.cell_change_pct <= 18.0
        assert 12.0 <= r.wire_change_pct <= 19.0
        assert abs(r.cell_change_pct - PAPER_CELL_CHANGE) < 2.5
        assert abs(r.wire_change_pct - PAPER_WIRE_CHANGE) < 2.5
        assert r.wire_change_pct > r.cell_change_pct  # paper ordering

    def test_format_contains_both_rows(self):
        text = generate_table2().format()
        assert "Number of Wires" in text
        assert "Number of Cells" in text
        assert "%Change" in text


class TestStructure:
    def test_mram_dominates_metal_delta(self):
        metal = build_metal_extension()
        parts = dict(metal.breakdown(depth=1))
        mram = parts["metal/mram"].cells
        total = parts["metal"].cells
        assert mram / total > 0.5

    def test_cost_scales_with_mram_size(self):
        small = build_metal_extension(mram_code_kib=2, mram_data_kib=1).total
        large = build_metal_extension(mram_code_kib=16, mram_data_kib=4).total
        assert large.cells > small.cells
        assert large.wires > small.wires

    def test_intercept_slots_scale(self):
        few = build_metal_extension(intercept_slots=4).total
        many = build_metal_extension(intercept_slots=64).total
        assert many.cells > few.cells

    def test_bigger_caches_bigger_baseline(self):
        small = build_baseline_cpu(icache_kib=8, dcache_kib=8).total
        big = build_baseline_cpu(icache_kib=32, dcache_kib=32).total
        assert big.cells > small.cells

    def test_metal_cpu_is_baseline_plus_extension(self):
        base = build_baseline_cpu().total
        ext = build_metal_extension().total
        combined = build_metal_cpu().total
        assert combined.cells == base.cells + ext.cells
        assert combined.wires == base.wires + ext.wires
