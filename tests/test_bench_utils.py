"""Benchmark harness utility tests."""

import pytest

from repro.bench import (
    MeasureResult,
    format_series,
    format_table,
    lcg_stream,
    measure,
    page_touch_sequence,
    per_op_cycles,
    poisson_arrivals,
    uniform_arrivals,
)
from repro import build_trap_machine


class TestWorkloads:
    def test_lcg_deterministic(self):
        gen_a, gen_b = lcg_stream(5), lcg_stream(5)
        a = [next(gen_a) for _ in range(10)]
        b = [next(gen_b) for _ in range(10)]
        assert a == b
        assert len(set(a)) > 1  # actually advancing

    def test_lcg_different_seeds_differ(self):
        a = next(lcg_stream(1))
        b = next(lcg_stream(2))
        assert a != b

    def test_uniform_arrivals(self):
        times = uniform_arrivals(4, 100, start=50)
        assert times == [50, 150, 250, 350]

    def test_poisson_mean(self):
        times = poisson_arrivals(2000, mean_interval_cycles=100, start=0)
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert 80 <= mean <= 120    # within 20% of the target mean

    def test_poisson_monotonic(self):
        times = poisson_arrivals(100, 50)
        assert times == sorted(times)

    def test_page_touch_sequential(self):
        addrs = page_touch_sequence(4, 8, pattern="sequential", base_va=0)
        assert addrs == [0, 4096, 8192, 12288, 0, 4096, 8192, 12288]

    def test_page_touch_random_in_range(self):
        addrs = page_touch_sequence(16, 100, pattern="random", base_va=0x1000_0000)
        assert all(0x1000_0000 <= a < 0x1000_0000 + 16 * 4096 for a in addrs)

    def test_page_touch_zipf_skewed(self):
        addrs = page_touch_sequence(64, 2000, pattern="zipf", base_va=0)
        head = sum(1 for a in addrs if a < 8 * 4096)
        assert head > len(addrs) // 2   # the head is hot

    def test_bad_pattern(self):
        with pytest.raises(ValueError):
            page_touch_sequence(4, 4, pattern="mystery")


class TestRunner:
    def test_measure_deltas(self):
        m = build_trap_machine(with_caches=False)
        prog = m.assemble("_start:\n    li a0, 1\n    halt\n")
        m.load(prog)
        m.core.pc = 0x1000
        result = measure(m, label="x")
        assert result.instructions == 3
        assert result.cycles > 0
        assert result.label == "x"
        assert result.cpi > 0

    def test_per_op_cycles(self):
        total = MeasureResult(cycles=1000, instructions=1)
        base = MeasureResult(cycles=400, instructions=1)
        assert per_op_cycles(total, base, ops=100) == 6.0

    def test_per_op_requires_positive_ops(self):
        with pytest.raises(ValueError):
            per_op_cycles(MeasureResult(1, 1), MeasureResult(1, 1), 0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            "T", ["name", "value"],
            [["metal", 1234], ["trap", 7.5]],
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1,234" in text
        assert "7.50" in text

    def test_format_table_note(self):
        text = format_table("T", ["a"], [[1]], note="shape holds")
        assert text.endswith("shape holds")

    def test_format_series(self):
        text = format_series("S", "x", ["y1", "y2"],
                             [(1, (10, 20)), (2, (30, 40))])
        assert "y1" in text
        assert "30" in text
