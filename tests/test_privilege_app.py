"""§3.1 application tests: kernel/user model and in-process isolation."""

import pytest

from repro import build_metal_machine, Cause, MachineConfig
from repro.isa.metal_ops import PERM_R, PERM_W, pack_pkr
from repro.mcode.privilege import (
    make_isolation_routines,
    make_kernel_user_routines,
)
from repro.mmu.types import TlbEntry
from repro.osdemo.boot import boot_metal_os
from repro.osdemo.userprog import syscall_metal


SYSCALL_TABLE = 0x2E00
FAULT_ENTRY = 0x1040


def priv_machine(extra=()):
    routines = make_kernel_user_routines(SYSCALL_TABLE, FAULT_ENTRY)
    routines += list(extra)
    return build_metal_machine(routines, with_caches=False)


class TestKernelUserModel:
    def test_kenter_dispatches_syscall_and_sets_level(self):
        m = priv_machine()
        m.route_cause(Cause.PRIVILEGE, "priv_fault")
        m.load_and_run(f"""
_start:
    # start "in kernel" (m0 = 0 at reset); drop to user first
    li   ra, user
    menter MR_KEXIT
user:
    menter MR_PRIV_GET      # a0 := current level
    mv    s0, a0
    # install a syscall handler and call it
    li   t0, {SYSCALL_TABLE:#x}
    li   t1, handler
    sw   t1, 0(t0)
    li   a0, 0              # syscall number 0
    menter MR_KENTER
    j    never
handler:
    menter MR_PRIV_GET      # a0 := level inside the kernel
    mv    s1, a0
    # return to user
    mv    ra, ra            # ra already holds the user resume
    menter MR_KEXIT
never:
    halt
""")
        # Before _start's first instruction, the kernel had to install the
        # table; here userspace installed it (machine boots at level 0...
        # after kexit the table store runs at user level, fine: no paging).
        assert m.reg("s0") == 1   # user level
        assert m.reg("s1") == 0   # kernel level inside the handler

    def test_syscall_returns_to_user(self):
        m = priv_machine()
        m.load_and_run(f"""
_start:
    li   t0, {SYSCALL_TABLE:#x}
    li   t1, handler
    sw   t1, 4(t0)           # syscall #1
    li   ra, user
    menter MR_KEXIT
user:
    li   a0, 1
    menter MR_KENTER
back:
    addi a1, a0, 1
    halt
handler:
    li   a0, 41
    menter MR_KEXIT
""")
        assert m.reg("a1") == 42

    def test_kexit_from_user_raises_privilege_fault(self):
        m = priv_machine()
        m.route_cause(Cause.PRIVILEGE, "priv_fault")
        m.load_and_run(f"""
_start:
    j    boot
.org {FAULT_ENTRY:#x}
kfault:
    # priv_fault escalated us back to kernel and jumped here
    menter MR_PRIV_GET
    mv   s1, a0              # should be kernel level again
    li   s2, 1               # fault observed
    halt
boot:
    li   ra, user
    menter MR_KEXIT
user:
    li   ra, user2
    menter MR_KEXIT          # already user -> privilege violation
user2:
    halt
""", base=0x1000)
        assert m.reg("s2") == 1
        assert m.reg("s1") == 0
        assert m.core.metal.stats.deliveries.get(int(Cause.PRIVILEGE)) == 1


class TestIsolationVault:
    VAULT_ENTRY = 0x5000
    SECRET_VA = 0x0060_0000

    def _machine(self):
        routines = make_kernel_user_routines(SYSCALL_TABLE, FAULT_ENTRY)
        routines += make_isolation_routines(self.VAULT_ENTRY, vault_key=3,
                                            from_level=0)
        m = build_metal_machine(routines, with_caches=False)
        m.route_cause(Cause.PRIVILEGE, "priv_fault")
        # lock the vault key outside the vault
        m.core.tlb.pkr = pack_pkr(disabled_keys=[3])
        return m

    def test_vault_roundtrip(self):
        m = self._machine()
        m.load_and_run(f"""
_start:
    menter MR_DENTER         # from level 0 (test config) into the vault
back:
    mv   s1, a0              # value produced by the vault
    halt
.org {self.VAULT_ENTRY:#x}
vault:
    menter MR_PRIV_GET       # level inside the vault
    mv   s0, a0
    li   a0, 0x5EC
    menter MR_DEXIT
""", base=0x1000)
        assert m.reg("s0") == 2      # VAULT_LEVEL
        assert m.reg("s1") == 0x5EC  # value returned through dexit
        # key relocked after dexit
        assert m.core.tlb.pkr == pack_pkr(disabled_keys=[3])

    def test_dexit_outside_vault_faults(self):
        m = self._machine()
        m.load_and_run(f"""
_start:
    j    go
.org {FAULT_ENTRY:#x}
kfault:
    li   s3, 1
    halt
go:
    menter MR_DEXIT          # not in the vault -> privilege violation
    halt
""", base=0x1000, max_instructions=1000)
        assert m.reg("s3") == 1
        assert m.core.metal.stats.deliveries.get(int(Cause.PRIVILEGE)) == 1


class TestMetalOsIntegration:
    def test_getpid_syscall(self):
        user = f"""
_user:
{syscall_metal("SYS_GETPID")}
    mv   s0, a0
{syscall_metal("SYS_EXIT")}
"""
        m = boot_metal_os(user, with_uli=False)
        m.run(max_instructions=100_000)
        assert m.reg("s0") == 7

    def test_putc_and_time(self):
        user = f"""
_user:
{syscall_metal("SYS_PUTC", "'X'")}
{syscall_metal("SYS_TIME")}
    mv   s1, a0
{syscall_metal("SYS_EXIT")}
"""
        m = boot_metal_os(user, with_uli=False)
        m.run(max_instructions=100_000)
        assert m.output == "X"
        assert m.reg("s1") > 0

    def test_user_level_after_boot(self):
        user = f"""
_user:
    menter MR_PRIV_GET
    mv   s0, a0
{syscall_metal("SYS_EXIT")}
"""
        m = boot_metal_os(user, with_uli=False)
        m.run(max_instructions=100_000)
        assert m.reg("s0") == 1
