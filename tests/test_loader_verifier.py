"""Boot-time loader and static verifier tests (paper §2.1)."""

import pytest

from repro.errors import MroutineLoadError, MroutineVerifyError
from repro.metal import MRoutine, Mram, load_mroutines, verify_mroutine
from repro.metal.verifier import verify_or_raise


def routine(name="r", entry=0, source="mexit\n", **kw):
    return MRoutine(name=name, entry=entry, source=source, **kw)


class TestLoaderLayout:
    def test_entries_and_symbols(self):
        image = load_mroutines([
            routine("alpha", 1),
            routine("beta", 2, source="menter_target:\n    mexit\n"),
        ])
        assert image.entry_of("alpha") == 1
        assert image.symbols["MR_ALPHA"] == 1
        assert image.symbols["MR_BETA"] == 2
        assert image.entry_offset(2) == image.routines["beta"].code_offset

    def test_data_allocation_sequential(self):
        image = load_mroutines([
            routine("a", 0, data_words=4),
            routine("b", 1, data_words=2),
        ])
        assert image.data_offset_of("a") == 0
        assert image.data_offset_of("b") == 16
        assert image.symbols["B_DATA"] == 16

    def test_data_init(self):
        image = load_mroutines([
            routine("a", 0, data_words=2, data_init=(0xAA, 0xBB)),
        ])
        assert image.mram.load_word(0) == 0xAA
        assert image.mram.load_word(4) == 0xBB

    def test_routine_at(self):
        image = load_mroutines([routine("a", 0), routine("b", 1)])
        b = image.routines["b"]
        assert image.routine_at(b.code_offset).name == "b"
        assert image.routine_at(0x7FF0) is None


class TestLoaderConstraints:
    def test_duplicate_entry(self):
        with pytest.raises(MroutineLoadError):
            load_mroutines([routine("a", 3), routine("b", 3)])

    def test_duplicate_name(self):
        with pytest.raises(MroutineLoadError):
            load_mroutines([routine("a", 0), routine("a", 1)])

    def test_entry_out_of_range(self):
        with pytest.raises(MroutineLoadError):
            routine("a", 64)

    def test_too_many_routines(self):
        routines = [routine(f"r{i}", i) for i in range(64)]
        image = load_mroutines(routines)
        assert len(image.routines) == 64
        with pytest.raises(MroutineLoadError):
            load_mroutines(routines + [routine("extra", 0)])

    def test_mreg_ownership_conflict(self):
        with pytest.raises(MroutineLoadError):
            load_mroutines([
                routine("a", 0, mregs=(4,)),
                routine("b", 1, mregs=(4,)),
            ])

    def test_shared_mregs_allowed(self):
        image = load_mroutines([
            routine("a", 0, shared_mregs=(4,)),
            routine("b", 1, shared_mregs=(4,)),
        ])
        assert len(image.routines) == 2

    def test_hardware_reserved_mregs(self):
        for reserved in (24, 28, 31):
            with pytest.raises(MroutineLoadError):
                load_mroutines([routine("a", 0, mregs=(reserved,))])

    def test_code_segment_exhaustion(self):
        big = "nop\n" * 100 + "mexit\n"
        with pytest.raises(MroutineLoadError):
            load_mroutines([routine("a", 0, source=big)],
                           mram=Mram(code_bytes=64))

    def test_data_segment_exhaustion(self):
        with pytest.raises(MroutineLoadError):
            load_mroutines([routine("a", 0, data_words=64)],
                           mram=Mram(data_bytes=64))

    def test_assembly_error_reported_with_routine_name(self):
        with pytest.raises(MroutineLoadError) as err:
            load_mroutines([routine("broken", 0, source="frob x\nmexit\n")])
        assert "broken" in str(err.value)


class TestVerifier:
    def _verify(self, source, **kw):
        r = routine("t", 0, source=source, **kw)
        image_kw = {}
        load = lambda: load_mroutines([r], **image_kw)  # noqa: E731
        return load

    def test_missing_exit_rejected(self):
        with pytest.raises(MroutineVerifyError):
            load_mroutines([routine("t", 0, source="nop\n")])

    def test_mraise_counts_as_exit(self):
        image = load_mroutines(
            [routine("t", 0, source="li t0, 11\nmraise t0\n")]
        )
        assert "t" in image.routines

    def test_nested_menter_rejected(self):
        with pytest.raises(MroutineVerifyError):
            load_mroutines([routine("t", 0, source="menter 0\nmexit\n")])

    def test_baseline_instructions_rejected(self):
        for bad in ("ecall", "ebreak", "mret", "wfi", "halt",
                    "csrrw zero, 0x300, zero"):
            with pytest.raises(MroutineVerifyError):
                load_mroutines([routine("t", 0, source=f"{bad}\nmexit\n")])

    def test_escaping_branch_rejected(self):
        # branch to +0x100 escapes a 2-instruction routine
        with pytest.raises(MroutineVerifyError):
            load_mroutines([routine("t", 0, source="beq a0, a0, 0x100\nmexit\n")])

    def test_local_branch_allowed(self):
        image = load_mroutines([routine("t", 0, source="""
            beqz a0, skip
            nop
        skip:
            mexit
        """)])
        assert "t" in image.routines

    def test_jalr_requires_declaration(self):
        src = "jalr zero, 0(t0)\nmexit\n"
        with pytest.raises(MroutineVerifyError):
            load_mroutines([routine("t", 0, source=src)])
        image = load_mroutines(
            [routine("t", 0, source=src, allow_dynamic_jumps=True)]
        )
        assert "t" in image.routines

    def test_constant_data_access_outside_allocation(self):
        src = "mld t0, 64(zero)\nmexit\n"
        with pytest.raises(MroutineVerifyError):
            load_mroutines([routine("t", 0, source=src, data_words=2)])

    def test_constant_data_access_inside_allocation(self):
        src = "mld t0, T_DATA+4(zero)\nmexit\n"
        image = load_mroutines([routine("t", 0, source=src, data_words=2)])
        assert "t" in image.routines

    def test_shared_data_grants_access(self):
        owner = routine("owner", 0, data_words=4)
        user = routine(
            "user", 1, source="mld t0, OWNER_DATA(zero)\nmexit\n",
            shared_data=("owner",),
        )
        image = load_mroutines([owner, user])
        assert "user" in image.routines

    def test_shared_data_unknown_routine(self):
        with pytest.raises(MroutineLoadError):
            load_mroutines([
                routine("u", 0, source="mexit\n", shared_data=("ghost",)),
            ])

    def test_dynamic_data_access_not_statically_checked(self):
        # rs1 != zero cannot be checked statically; the verifier lets it
        # pass and the runtime bounds-check catches violations instead.
        src = "mld t0, 0(t1)\nmexit\n"
        image = load_mroutines([routine("t", 0, source=src)])
        assert "t" in image.routines

    def test_report_object(self):
        r = routine("t", 0, source="nop\n")
        r.code_words = [0x13]  # nop, no exit
        report = verify_mroutine(r)
        assert not report.ok
        assert report.instruction_count == 1
        assert any("no mexit" in p for p in report.problems)

    def test_verify_or_raise_ok(self):
        r = routine("t", 0)
        r.code_words = [0x100B + (1 << 12)]  # mexit encoding via loader
        image = load_mroutines([routine("ok", 0)])
        ok = image.routines["ok"]
        assert verify_or_raise(ok).ok

    def test_empty_routine_rejected(self):
        r = routine("t", 0)
        r.code_words = []
        report = verify_mroutine(r)
        assert not report.ok
