"""Translation-cache correctness: invalidation, exactness, counters.

The tcache (:mod:`repro.cpu.tcache`) is a host-side fast path and must be
architecture-invisible.  Every test here runs with the cache on and off,
on both engines, and expects bit-identical guest behaviour: self-modifying
code, mroutine reloads, interception enabled mid-run, and interrupt-heavy
workloads.
"""

from __future__ import annotations

import pytest

from repro import MRoutine, assemble, build_metal_machine, build_trap_machine
from repro.cpu.exceptions import Cause

ENGINES = ("functional", "pipeline")
TCACHE = (True, False)


def _word_of(source: str) -> int:
    """Encode a single instruction and return its 32-bit word."""
    program = assemble(source, base=0)
    return int.from_bytes(program.data[:4], "little")


def _machines(**kwargs):
    noop = MRoutine(name="noop", entry=0, source="mexit\n")
    yield build_metal_machine([noop], with_caches=False, **kwargs)
    yield build_trap_machine(with_caches=False, **kwargs)


# ---------------------------------------------------------------------------
# self-modifying code
# ---------------------------------------------------------------------------

SMC_PROGRAM = f"""
_start:
    li   s1, patch
    li   s3, {{new_word:#x}}
again:
patch:
    addi a0, a0, 1           # first pass; becomes "addi a0, a0, 100"
    bnez s0, done
    sw   s3, 0(s1)           # overwrite the instruction we just ran
    li   s0, 1
    j    again
done:
    halt
"""


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("tcache", TCACHE)
def test_self_modifying_code(engine, tcache):
    """A store over an already-executed instruction must take effect the
    next time that address is reached (store-hook eviction)."""
    new_word = _word_of("addi a0, a0, 100")
    source = SMC_PROGRAM.format(new_word=new_word)
    for machine in _machines(engine=engine, tcache=tcache):
        machine.load_and_run(source, max_instructions=10_000)
        assert machine.reg("a0") == 101, (
            f"{machine.name}: stale translation executed after SMC store"
        )


@pytest.mark.parametrize("engine", ENGINES)
def test_host_poke_invalidates(engine):
    """Host-side Machine.write_word into code must also evict blocks."""
    noop = MRoutine(name="noop", entry=0, source="mexit\n")
    machine = build_metal_machine([noop], engine=engine, with_caches=False)
    program = machine.assemble("""
_start:
    addi a0, a0, 1
    halt
""", base=0x1000)
    machine.load(program)
    machine.core.pc = 0x1000
    machine.run(max_instructions=10)
    assert machine.reg("a0") == 1
    # Rewrite the first instruction from the host, then re-run it.
    machine.write_word(0x1000, _word_of("addi a0, a0, 50"))
    machine.core.halted = False
    machine.core.pc = 0x1000
    machine.run(max_instructions=10)
    assert machine.reg("a0") == 51


# ---------------------------------------------------------------------------
# mroutine reload
# ---------------------------------------------------------------------------

def _probe_routine(value: int) -> MRoutine:
    return MRoutine(name="probe", entry=0, source=f"""
        wmr  m13, t0
        li   t0, {value}
        wmr  m14, t0
        rmr  t0, m13
        mexit
    """, shared_mregs=(13, 14))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("tcache", TCACHE)
def test_mroutine_reload_invalidates(engine, tcache):
    """After reload_mroutines, menter must run the *new* mcode, not a
    cached translation of the old MRAM contents."""
    machine = build_metal_machine([_probe_routine(111)], engine=engine,
                                  with_caches=False, tcache=tcache)
    machine.load_and_run("""
_start:
    menter MR_PROBE
    halt
""", max_instructions=1_000)
    assert machine.mreg(14) == 111

    machine.reload_mroutines([_probe_routine(222)])
    machine.core.halted = False
    machine.core.pc = 0x1000
    machine.run(max_instructions=1_000)
    assert machine.mreg(14) == 222, (
        "stale MRAM translation survived reload_mroutines"
    )


# ---------------------------------------------------------------------------
# interception enabled mid-run
# ---------------------------------------------------------------------------

SETUP = MRoutine(name="setup", entry=0, source="""
    micept a0, a1
    mexit
""")

# lw handler that emulates the load and adds 1000 to the result.
EMUL_PLUS = MRoutine(name="emul", entry=1, source="""
    wmr  m13, t0
    wmr  m14, t1
    rmr  t0, m29
    srai t1, t0, 20
    rmr  t0, m25
    add  t0, t0, t1
    lw   t1, 0(t0)
    addi t1, t1, 1000
    wmr  m27, t1
    rmr  t0, m29
    srli t0, t0, 7
    andi t0, t0, 31
    wmr  m26, t0
    rmr  t1, m14
    rmr  t0, m13
    mexitm
""", shared_mregs=(13, 14))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("tcache", TCACHE)
def test_intercept_enable_mid_run(engine, tcache):
    """Blocks compiled while the intercept table was empty must not keep
    running once a rule is installed mid-run."""
    machine = build_metal_machine([SETUP, EMUL_PLUS], engine=engine,
                                  with_caches=False, tcache=tcache)
    machine.load_and_run("""
_start:
    li   s2, 0x3000
    li   t2, 7
    sw   t2, 0(s2)
    li   s0, 50
warm:
    lw   a0, 0(s2)           # plain loads: translations get hot
    addi s0, s0, -1
    bnez s0, warm
    li   a0, 0x503           # opcode LOAD, funct3 2: lw only
    li   a1, MR_EMUL
    menter MR_SETUP
    lw   a2, 0(s2)           # must now be intercepted and emulated
    halt
""", max_instructions=10_000)
    assert machine.core.metal.intercept.hits == 1
    assert machine.reg("a2") == 1007, (
        "load after micept was not intercepted (stale fast-path block)"
    )


# ---------------------------------------------------------------------------
# tcache on/off differential (cycle exactness)
# ---------------------------------------------------------------------------

def _timer_interrupt_machine(engine, tcache):
    handler = MRoutine(name="tick", entry=0, source="""
        wmr  m10, t0
        wmr  m11, t1
        li   t0, 0x3F00
        mpld t1, 0(t0)
        addi t1, t1, 1
        mpst t1, 0(t0)
        li   t0, TIMER_CTRL
        mpst zero, 0(t0)
        rmr  t1, m11
        rmr  t0, m10
        mexit
    """, mregs=(10, 11))
    enable = MRoutine(name="irq_on", entry=1, source="""
        li   t0, CAUSE_INTERRUPT_TIMER
        li   t1, MR_TICK
        mivec t0, t1
        li   t0, 1
        mintc t0
        mexit
    """)
    machine = build_metal_machine([handler, enable], engine=engine,
                                  with_caches=False, tcache=tcache)
    machine.timer.compare = 500
    machine.timer.irq_enabled = True
    return machine


TIMER_WORKLOAD = """
_start:
    menter MR_IRQ_ON
spin:
    li   t2, 0x3F00
    lw   t3, 0(t2)
    addi t4, t4, 1
    beqz t3, spin
    halt
"""


@pytest.mark.parametrize("engine", ENGINES)
def test_timer_interrupt_workload_identical(engine):
    """Interrupt mid-loop: instructions, cycles, registers and memory all
    identical with the tcache on and off."""
    outcomes = {}
    for tcache in TCACHE:
        machine = _timer_interrupt_machine(engine, tcache)
        result = machine.load_and_run(TIMER_WORKLOAD, max_instructions=100_000)
        outcomes[tcache] = (
            result.instructions,
            result.cycles,
            tuple(machine.core.regs),
            machine.read_word(0x3F00),
        )
        assert machine.read_word(0x3F00) == 1
    assert outcomes[True] == outcomes[False], (
        f"tcache changed guest-visible state: {outcomes}"
    )


FIB_WORKLOAD = """
_start:
    li   s0, 24
    li   a0, 0
    li   a1, 1
    li   s2, 0x3800
fib:
    add  a2, a0, a1
    mv   a0, a1
    mv   a1, a2
    sw   a2, 0(s2)
    addi s2, s2, 4
    addi s0, s0, -1
    bnez s0, fib
    halt
"""


@pytest.mark.parametrize("engine", ENGINES)
def test_plain_workload_identical(engine):
    outcomes = {}
    for tcache in TCACHE:
        for machine in _machines(engine=engine, tcache=tcache):
            result = machine.load_and_run(FIB_WORKLOAD,
                                          max_instructions=10_000)
            key = (machine.name, tcache)
            outcomes[key] = (result.instructions, result.cycles,
                             tuple(machine.core.regs))
    for name in ("metal", "trap"):
        assert outcomes[(name, True)] == outcomes[(name, False)]


@pytest.mark.parametrize("engine", ENGINES)
def test_set_tcache_mid_machine(engine):
    """The flag is switchable on a live machine; both halves of the run
    retire the same architecture."""
    noop = MRoutine(name="noop", entry=0, source="mexit\n")
    machine = build_metal_machine([noop], engine=engine, with_caches=False)
    program = machine.assemble(FIB_WORKLOAD, base=0x1000)
    machine.load(program)
    machine.core.pc = 0x1000
    machine.run(max_instructions=20, raise_on_limit=False)  # fast path
    machine.set_tcache(False)
    machine.run(max_instructions=10_000)       # seed path finishes the run
    assert machine.core.halted

    reference = build_metal_machine([noop], engine=engine,
                                    with_caches=False, tcache=False)
    reference.load_and_run(FIB_WORKLOAD, max_instructions=10_000)
    assert machine.cycles == reference.cycles
    assert machine.core.regs == reference.core.regs


# ---------------------------------------------------------------------------
# counters and snapshot interaction
# ---------------------------------------------------------------------------

def test_perf_counters_surface():
    noop = MRoutine(name="noop", entry=0, source="mexit\n")
    machine = build_metal_machine([noop], with_caches=False)
    machine.load_and_run(FIB_WORKLOAD, max_instructions=10_000)
    perf = machine.perf
    stats = perf.tcache
    assert perf.guest_instructions > 0
    assert perf.host_seconds > 0
    assert perf.host_mips > 0
    assert stats.blocks_compiled > 0
    assert stats.hits > 0
    assert stats.hit_rate > 0.5
    assert stats.fast_instructions > 0
    assert stats.fast_instructions <= perf.guest_instructions
    summary = perf.summary()
    assert "host MIPS" in summary and "hit rate" in summary


def test_snapshot_restore_flushes():
    from repro.machine.snapshot import restore_snapshot, take_snapshot

    noop = MRoutine(name="noop", entry=0, source="mexit\n")
    machine = build_metal_machine([noop], with_caches=False)
    program = machine.assemble(SMC_PROGRAM.format(
        new_word=_word_of("addi a0, a0, 100")), base=0x1000)
    machine.load(program)
    machine.core.pc = 0x1000
    snap = take_snapshot(machine)
    machine.run(max_instructions=10_000)
    assert machine.reg("a0") == 101
    # Restore rewrites RAM wholesale (bypassing write hooks); cached
    # translations of the patched code must not survive.
    restore_snapshot(machine, snap)
    machine.run(max_instructions=10_000)
    assert machine.reg("a0") == 101


# ---------------------------------------------------------------------------
# superblock chaining
# ---------------------------------------------------------------------------

def test_next_pc_hint_matches_decoded_target():
    """The per-entry next_pc_hint must be computed from the decoded
    instruction, not assumed sequential: a stale hint would chain a block
    to its fall-through even when the terminator always jumps backward.

    Regression test for the hint bug fixed alongside chaining: probe the
    cache directly and compare each terminator's hint with the decoded
    jal/branch target.
    """
    from repro.cpu.stats import TcacheStats
    from repro.cpu.tcache import TranslationCache

    noop = MRoutine(name="noop", entry=0, source="mexit\n")
    machine = build_metal_machine([noop], with_caches=False)
    program = machine.assemble("""
_start:
    addi a0, a0, 1
loop:
    addi a1, a1, 1
    bnez a1, loop
after:
    j    _start
""", base=0x1000)
    machine.load(program)

    cache = TranslationCache(TcacheStats())
    loop = program.symbols["loop"]
    start = program.symbols["_start"]
    after = program.symbols["after"]

    block = cache.mem_block(start, machine.bus)
    # Terminator is `bnez a1, loop`: hint must be the branch target.
    instr, _fn, pc, _flags, hint = block.entries[-1]
    assert pc == loop + 4
    assert hint == loop, f"branch hint {hint:#x} != decoded target {loop:#x}"

    block = cache.mem_block(after, machine.bus)
    instr, _fn, pc, _flags, hint = block.entries[-1]
    assert pc == after
    assert hint == start, f"jal hint {hint:#x} != decoded target {start:#x}"


def _hop_program(machine, new_word):
    """A loop at 0x1000 chained through a one-instruction stub on a
    *different* page at 0x2000; the guest patches the stub mid-run while
    the predecessor's chain link is warm.

    Iterations 1..97 add 1, iterations 98..100 add 100: a0 ends at 397.
    """
    main = machine.assemble(f"""
_start:
    li   s1, hop
    li   s2, {new_word:#x}
    li   s0, 100
loop:
    j    hop
back:
    addi s0, s0, -1
    li   t1, 3
    bne  s0, t1, cont
    sw   s2, 0(s1)           # evict hop's block while loop chains to it
cont:
    bnez s0, loop
    halt
""", base=0x1000, extra_symbols={"hop": 0x2000})
    stub = machine.assemble("""
hop:
    addi a0, a0, 1           # becomes "addi a0, a0, 100" when s0 == 3
    j    back
""", base=0x2000, extra_symbols={"back": main.symbols["back"]})
    machine.load(main)
    machine.load(stub)
    machine.core.pc = 0x1000


@pytest.mark.parametrize("engine", ENGINES)
def test_chained_successor_evicted_mid_run(engine):
    """Evicting the *successor* of a chained pair mid-run must break the
    link: the predecessor's next traversal has to re-dispatch and see the
    patched code, with identical results to the tcache-off run."""
    new_word = _word_of("addi a0, a0, 100")
    outcomes = {}
    for tcache in TCACHE:
        noop = MRoutine(name="noop", entry=0, source="mexit\n")
        machine = build_metal_machine([noop], engine=engine,
                                      with_caches=False, tcache=tcache)
        _hop_program(machine, new_word)
        result = machine.run(max_instructions=10_000)
        assert machine.reg("a0") == 397, (
            f"tcache={tcache}: stale chained successor executed after "
            f"cross-page SMC store"
        )
        outcomes[tcache] = (result.instructions, result.cycles,
                            tuple(machine.core.regs))
        if tcache and engine == "functional":
            stats = machine.perf.tcache
            assert stats.chain_hits > 0
            assert stats.chain_breaks >= 1, (
                "evicting a chained successor must sever the link"
            )
    assert outcomes[True] == outcomes[False]


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("tcache", TCACHE)
def test_intercept_edge_severs_warm_chain(engine, tcache):
    """Installing the first intercept rule while a chained trampoline
    loop is hot must flush the whole mem namespace — including blocks
    only reachable through chain links."""
    machine = build_metal_machine([SETUP, EMUL_PLUS], engine=engine,
                                  with_caches=False, tcache=tcache)
    machine.load_and_run("""
_start:
    li   s2, 0x3000
    li   t2, 7
    sw   t2, 0(s2)
    li   s0, 60
warm:
    lw   a0, 0(s2)
    j    mid                 # unconditional hop: warms a chain link
mid:
    addi s0, s0, -1
    bnez s0, warm
    li   a0, 0x503           # opcode LOAD, funct3 2: lw only
    li   a1, MR_EMUL
    menter MR_SETUP
    lw   a2, 0(s2)           # must be intercepted, not run from a chain
    halt
""", max_instructions=10_000)
    assert machine.core.metal.intercept.hits == 1
    assert machine.reg("a2") == 1007, (
        "load after micept escaped interception through a warm chain"
    )
    if tcache and engine == "functional":
        assert machine.perf.tcache.chain_hits > 0, (
            "trampoline loop should have followed chain links"
        )


def test_snapshot_restore_severs_chains():
    """flush_all on snapshot restore must also kill chained successors:
    a link into a dropped block may never execute stale code."""
    from repro.machine.snapshot import restore_snapshot, take_snapshot

    noop = MRoutine(name="noop", entry=0, source="mexit\n")
    machine = build_metal_machine([noop], with_caches=False)
    new_word = _word_of("addi a0, a0, 100")
    _hop_program(machine, new_word)
    snap = take_snapshot(machine)
    machine.run(max_instructions=10_000)
    assert machine.reg("a0") == 397
    restore_snapshot(machine, snap)
    machine.run(max_instructions=10_000)
    assert machine.reg("a0") == 397, (
        "chain link survived snapshot restore and replayed patched code"
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_chaining_toggle(engine):
    """set_tcache_chaining(False) reverts to per-block dispatch (the
    PR-1 behaviour): no chain counters move, guest results unchanged."""
    outcomes = {}
    for chain in (True, False):
        noop = MRoutine(name="noop", entry=0, source="mexit\n")
        machine = build_metal_machine([noop], engine=engine,
                                      with_caches=False)
        machine.set_tcache_chaining(chain)
        result = machine.load_and_run(FIB_WORKLOAD, max_instructions=10_000)
        outcomes[chain] = (result.instructions, result.cycles,
                           tuple(machine.core.regs))
        stats = machine.perf.tcache
        if not chain:
            assert stats.chain_links == 0
            assert stats.chain_hits == 0
            assert stats.chain_breaks == 0
    assert outcomes[True] == outcomes[False]
