"""Composition hazard the paper's §3.5 (Nested Metal) motivates: what if an
interrupt fires *inside* a transaction?

With base (non-nested) Metal, the interrupt handler's own loads/stores in
normal mode would be intercepted into the transaction — the layering
problem the paper describes.  The §3.3-compatible mitigation is to defer
interrupts for the duration of the transaction (transactions are short and
bounded by the RS/WS capacity, like mroutines themselves); these tests pin
both the hazard and the mitigation.
"""

import pytest

from repro import MRoutine, build_metal_machine, Cause
from repro.mcode.stm import StmHost, make_stm_routines

CLOCK = 0x20000
LOCKS = 0x21000

#: tstart variant that also defers interrupts until commit/abort.
TSTART_NOIRQ = MRoutine(name="tstart_noirq", entry=33, source="""
tstart_noirq:
    mintc zero               # defer interrupts for the transaction
    mexit
""", shared_data=("tstart",))

IRQ_ON = MRoutine(name="irq_on", entry=34, source="""
irq_on:
    li   t0, CAUSE_INTERRUPT_TIMER
    li   t1, MR_TICK
    mivec t0, t1
    li   t0, 1
    mintc t0
    mexit
""")

#: Timer handler: writes a flag in normal-mode memory... via mpst so it is
#: NOT intercepted (handlers that must not join transactions use physical
#: stores — or nested Metal).
TICK = MRoutine(name="tick", entry=35, source="""
tick:
    wmr  m9, t0
    li   t0, TIMER_CTRL
    mpst zero, 0(t0)         # stop the timer
    li   t0, 0x3F00
    mpst t0, 0(t0)           # mark: interrupt handled
    rmr  t0, m9
    mexit
""", shared_mregs=(9,))


def machine():
    routines = make_stm_routines(CLOCK, LOCKS) + [TSTART_NOIRQ, IRQ_ON, TICK]
    return build_metal_machine(routines, with_caches=False)


TX_BODY = """
    li   t0, 0x30000
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
"""


class TestDeferredInterrupts:
    def test_transaction_with_interrupts_deferred(self):
        """mintc-off during the tx: the interrupt waits, the tx commits
        cleanly, the interrupt is delivered right after."""
        m = machine()
        host = StmHost(m, CLOCK, LOCKS)
        m.timer.compare = 150    # fires mid-transaction
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    menter MR_IRQ_ON
    li   a0, onabort
    menter MR_TSTART
    menter MR_TSTART_NOIRQ   # defer interrupts inside the tx
""" + TX_BODY + """
    menter MR_TCOMMIT
    mv   s1, a0
    menter MR_IRQ_ON         # re-enable: the deferred interrupt lands now
    li   t2, 400
spin:
    addi t2, t2, -1
    bnez t2, spin
    halt
onabort:
    j    onabort
""", max_instructions=100_000)
        assert m.reg("s1") == 1              # committed
        assert host.commits == 1
        assert m.read_word(0x3F00) != 0      # interrupt delivered afterwards
        # the tx contains exactly its own accesses: 1 read + 1 write
        assert m.core.metal.intercept.hits == 2

    def test_interrupt_inside_transaction_pollutes_it(self):
        """Without deferral: the handler runs mid-tx; any normal-mode
        loads/stores it performed would be intercepted (the hazard).  Our
        handler uses physical stores, so the transaction still commits —
        but the delivery itself is observable mid-transaction."""
        m = machine()
        host = StmHost(m, CLOCK, LOCKS)
        m.timer.compare = 150
        m.timer.irq_enabled = True
        m.load_and_run("""
_start:
    menter MR_IRQ_ON
    li   a0, onabort
    menter MR_TSTART
    li   t2, 200
spin:
    addi t2, t2, -1          # stretch the transaction window
    bnez t2, spin
""" + TX_BODY + """
    menter MR_TCOMMIT
    mv   s1, a0
    halt
onabort:
    j    onabort
""", max_instructions=100_000)
        assert m.read_word(0x3F00) != 0      # delivered during the tx
        assert m.reg("s1") == 1              # still committed (phys stores)
        assert host.commits == 1
