"""Property-based assembler/expression tests."""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.asm.assembler import split_operands
from repro.asm.expr import ExprEvaluator, hi20, lo12
from repro.asm.lexer import tokenize
from repro.isa.decoder import decode


u32s = st.integers(0, 0xFFFFFFFF)


class TestHiLo:
    @given(u32s)
    def test_hi_lo_reconstructs_every_address(self, value):
        assert ((hi20(value) << 12) + lo12(value)) & 0xFFFFFFFF == value

    @given(u32s)
    def test_lo12_is_signed_12bit(self, value):
        assert -2048 <= lo12(value) <= 2047

    @given(u32s)
    def test_hi20_fits_field(self, value):
        assert 0 <= hi20(value) < (1 << 20)


class TestExpressions:
    def _eval(self, text, symbols=None, location=0):
        ev = ExprEvaluator(symbols or {}, location)
        return ev.evaluate(tokenize(text))

    @given(st.integers(-10_000, 10_000), st.integers(-10_000, 10_000))
    def test_addition(self, a, b):
        assert self._eval(f"{a} + {b}".replace("+ -", "- ")) == a + b

    @given(st.integers(0, 1000), st.integers(0, 1000), st.integers(1, 50))
    def test_precedence(self, a, b, c):
        assert self._eval(f"{a} + {b} * {c}") == a + b * c
        assert self._eval(f"({a} + {b}) * {c}") == (a + b) * c

    @given(st.integers(0, 10_000), st.integers(1, 100))
    def test_division_floors(self, a, b):
        assert self._eval(f"{a} / {b}") == a // b

    def test_nested_unary_minus(self):
        assert self._eval("- - 5") == 5
        assert self._eval("-(3 + 4)") == -7

    @given(st.integers(0, 0xFFFF))
    def test_symbols_resolve(self, value):
        assert self._eval("SYM + 1", symbols={"SYM": value}) == value + 1

    @given(st.integers(0, 0xFFFF))
    def test_dot_location(self, loc):
        assert self._eval(". + 4", location=loc) == loc + 4


class TestSplitOperands:
    def test_parens_protect_commas(self):
        # not a realistic operand, but commas inside parens must not split
        assert split_operands("a, (b, c), d") == ["a", "(b, c)", "d"]

    def test_strings_protect_commas(self):
        assert split_operands('"x, y", z') == ['"x, y"', "z"]

    def test_empty(self):
        assert split_operands("") == []

    @given(st.lists(st.sampled_from(["a0", "12", "sym", "0x10"]),
                    min_size=1, max_size=6))
    def test_roundtrip_simple(self, chunks):
        joined = ", ".join(chunks)
        assert split_operands(joined) == chunks


@st.composite
def li_values(draw):
    return draw(st.integers(-(1 << 31), (1 << 32) - 1))


@given(li_values())
@settings(max_examples=300)
def test_li_materializes_any_32bit_value(value):
    """The li pseudo must reconstruct every 32-bit constant exactly."""
    prog = assemble(f"li s0, {value}")
    hi = decode(prog.words()[0]).imm
    lo = decode(prog.words()[1]).imm
    assert (hi + lo) & 0xFFFFFFFF == value & 0xFFFFFFFF


@given(li_values())
@settings(max_examples=100)
def test_li_executes_to_value(value):
    """End to end: the machine register really holds the constant."""
    from repro import build_trap_machine

    m = build_trap_machine(with_caches=False)
    m.load_and_run(f"_start:\n    li s0, {value}\n    halt\n")
    assert m.reg("s0") == value & 0xFFFFFFFF


@given(st.integers(0, 200), st.integers(0, 200))
def test_labels_are_position_exact(before, after):
    """A label's address equals base + 4 * (instructions before it)."""
    source = (
        "_start:\n" + "    nop\n" * before
        + "here:\n" + "    nop\n" * after + "    halt\n"
    )
    prog = assemble(source, base=0x2000)
    assert prog.symbols["here"] == 0x2000 + 4 * before
    assert prog.size == 4 * (before + after + 1)
