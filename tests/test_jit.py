"""MJIT tier-2 compiler tests (:mod:`repro.cpu.jit`).

The closure tier (tcache) is covered by the differential fuzzer and the
tcache tests; this file pins the *compiler*: the exact Python source
generated for a known block (golden snapshot), guard elision engaging
only at MAS-proven access sites, every eviction path dropping compiled
code, and the toggle/config/preformation wiring.  Bit-identity of tier-2
execution against the interpreter is fuzzed in
``tests/test_superblock_differential.py`` (the fourth lockstep machine).
"""

from __future__ import annotations

import textwrap

from repro import MRoutine, build_metal_machine
from repro.machine.builder import MachineConfig

CODE_BASE = 0x1000

LOOP = """
_start:
    li t0, 50
loop:
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, loop
    halt
"""

#: Constant-offset MRAM accesses: the interval pass proves both sites
#: in-bounds, licensing MJIT's guard elision.
ACC = MRoutine(name="acc", entry=1, data_words=4, source="""
    mld x5, ACC_DATA+0(x0)
    addi x5, x5, 1
    mst x5, ACC_DATA+0(x0)
    wmr m27, x5
    mexitm
""")

#: MReg-indexed MRAM access: in range at runtime (m20 stays 0) but the
#: interval pass cannot bound an ``rmr`` result, so the site is
#: unproven and must keep the guarded ``execute()`` dispatch.
IDX = MRoutine(name="idx", entry=1, data_words=4, mregs=(20,), source="""
    rmr x6, m20
    mld x7, IDX_DATA(x6)
    addi x7, x7, 1
    mst x7, IDX_DATA(x6)
    mexitm
""")

MENTER_LOOP = """
_start:
    li s0, 10
loop:
    menter 1
    addi s0, s0, -1
    bnez s0, loop
    halt
"""


def _machine(routines=(), jit=True, threshold=1, **cfg):
    machine = build_metal_machine(
        list(routines),
        config=MachineConfig(with_caches=False, jit=jit, **cfg))
    if jit and threshold is not None:
        machine.sim.tcache.jit_threshold = threshold
    return machine


def _jit_sources(machine, ns="mram"):
    table = machine.sim.tcache._mram if ns == "mram" else machine.sim.tcache._mem
    return {pc: b.jit_fn.__jit_source__
            for pc, b in table.items() if b.jit_fn is not None}


# ---------------------------------------------------------------------------
# codegen golden snapshot
# ---------------------------------------------------------------------------
GOLDEN_LOOP_BLOCK = textwrap.dedent("""\
    def _jit(core, block, timer, sync, budget, instret_base, limit):
        regs = core.regs
        timing = timer.timing
        _ml = timing.mem_latency
        bc = _ml if _ml > 1 else 1
        _bt = timing.branch_taken_penalty
        r5 = regs[5]
        r6 = regs[6]
        retired = 0
        loops = 0
        cyc = 0
        while True:
            r6 = (r6 + 1) & 4294967295
            r5 = (r5 + -1) & 4294967295
            retired += 2
            cyc += 2 * bc
            retired += 1
            if r5 != 0:
                cyc += bc + _bt
                if loops < limit and budget - retired >= 3:
                    loops += 1
                    continue
                next_pc = 4104
                break
            else:
                cyc += bc
                next_pc = 4116
                break
        regs[5] = r5
        regs[6] = r6
        timer.cycles += cyc
        return (0, next_pc, retired, loops, None)""")


def test_golden_source_self_loop():
    """The hot self-loop block compiles to exactly the expected source:
    registers as locals, the backward branch internalized as ``while
    True``/``continue``, unit costs batched, state spilled only at the
    exits.  An intentional codegen change means updating this snapshot —
    an unintentional one means a bug."""
    m = _machine()
    m.load_and_run(LOOP, base=CODE_BASE)
    assert m.reg("t1") == 50
    block = m.sim.tcache._mem[CODE_BASE + 8]
    assert block.jit_fn is not None, "hot loop block was not tier-2 compiled"
    assert block.jit_fn.__jit_source__.rstrip() == GOLDEN_LOOP_BLOCK


def test_tier_of_reports_jit():
    m = _machine()
    m.load_and_run(LOOP, base=CODE_BASE)
    assert m.sim.tcache.tier_of("mem", CODE_BASE + 8) == "jit"
    assert m.sim.tcache.tier_of("mem", 0xDEAD) is None


# ---------------------------------------------------------------------------
# MAS-licensed guard elision
# ---------------------------------------------------------------------------
def test_guard_elision_with_proven_facts():
    """Constant-offset ``mld``/``mst`` sites the interval pass proved
    in-bounds compile to direct byte-array access (``_upk``/``_pk``)
    with only the alignment guard kept."""
    m = _machine([ACC])
    image = m.metal_image
    assert image.analysis["acc"].facts.proven_access_words, (
        "interval pass failed to prove the constant-offset accesses")
    assert m.sim.tcache._proven_pcs, "proven pcs never reached the tcache"
    r = m.load_and_run(MENTER_LOOP, base=CODE_BASE)
    assert r.instructions > 0
    sources = _jit_sources(m)
    assert sources, "no mram block was tier-2 compiled"
    body = "\n".join(sources.values())
    assert "_upk(data" in body and "_pk(data" in body, (
        "proven accesses were not elided to direct array access")
    assert "CAUSE_BUS_ERROR, _o" in body   # alignment guard stays


def test_guard_elision_requires_facts():
    """An access the interval pass cannot bound (mreg-indexed) keeps the
    guarded ``execute()`` dispatch — elision only ever follows a proof."""
    m = _machine([IDX])
    assert not m.metal_image.analysis["idx"].facts.proven_access_words
    m.load_and_run(MENTER_LOOP, base=CODE_BASE)
    sources = _jit_sources(m)
    assert sources, "no mram block was tier-2 compiled"
    body = "\n".join(sources.values())
    assert "_upk(data" not in body and "_pk(data" not in body
    assert "execute(core" in body


def test_elision_parity_with_interpreter():
    """The elided routine is bit-identical to the interpreter run."""
    results = {}
    for jit in (False, True):
        m = _machine([ACC], jit=jit)
        r = m.load_and_run(MENTER_LOOP, base=CODE_BASE)
        results[jit] = (r.instructions, r.cycles, list(m.core.regs),
                        bytes(m.core.metal.mram.data))
    assert results[False] == results[True]


# ---------------------------------------------------------------------------
# eviction drops compiled code
# ---------------------------------------------------------------------------
def test_ram_write_eviction_drops_compiled_code():
    m = _machine()
    m.load_and_run(LOOP, base=CODE_BASE)
    block = m.sim.tcache._mem[CODE_BASE + 8]
    assert block.jit_fn is not None
    m.sim.tcache.on_ram_write(CODE_BASE + 8, 4)
    assert not block.valid and block.jit_fn is None


def test_reload_mroutines_drops_compiled_code():
    m = _machine([ACC])
    m.load_and_run(MENTER_LOOP, base=CODE_BASE)
    blocks = [b for b in m.sim.tcache._mram.values() if b.jit_fn is not None]
    assert blocks
    m.reload_mroutines([IDX])
    # The flush happens on the next mram dispatch (version check).
    m.sim.tcache.mram_block(0, m.core.metal.mram)
    assert all(b.jit_fn is None for b in blocks)


def test_toggle_off_drops_compiled_code():
    m = _machine()
    m.load_and_run(LOOP, base=CODE_BASE)
    blocks = [b for b in m.sim.tcache._mem.values() if b.jit_fn is not None]
    assert blocks
    m.set_tcache_jit(False)
    assert not m.sim.tcache.jit
    assert m.sim.tcache.cached_blocks == 0
    assert all(b.jit_fn is None for b in blocks)


# ---------------------------------------------------------------------------
# wiring: config, counters, preformation
# ---------------------------------------------------------------------------
def test_machineconfig_and_toggle_wiring():
    assert build_metal_machine([]).sim.tcache.jit is False
    m = build_metal_machine([], config=MachineConfig(jit=True))
    assert m.sim.tcache.jit is True
    m.set_tcache_jit(False)
    assert m.sim.tcache.jit is False


def test_jit_counters_in_perf_summary():
    m = _machine()
    m.load_and_run(LOOP, base=CODE_BASE)
    tc = m.perf.tcache
    assert tc.jit_blocks > 0
    assert tc.jit_instructions > 0
    assert tc.jit_compile_ms > 0.0
    assert 0.0 < tc.jit_dispatch_share <= 1.0
    assert "tcache jit (MJIT)" in m.perf.summary()


def test_toggle_parity_mixed_workload():
    """Same mixed program (ALU loop + menter + RAM loads/stores), jit on
    vs off: guest results identical, tier 2 actually engaged."""
    source = """
_start:
    li s1, 0x3000
    li s0, 200
loop:
    addi t1, t1, 1
    sw   t1, 0(s1)
    lw   t2, 0(s1)
    menter 1
    addi s0, s0, -1
    bnez s0, loop
    halt
"""
    runs = {}
    for jit in (False, True):
        m = _machine([ACC], jit=jit)
        r = m.load_and_run(source, base=CODE_BASE)
        runs[jit] = (r.instructions, r.cycles, list(m.core.regs),
                     bytes(m.core.metal.mram.data))
        if jit:
            assert m.perf.tcache.jit_instructions > 0
    assert runs[False] == runs[True]


def test_preform_warms_tier_two():
    """``preform`` + ``jit`` compiles the planned loop heads to tier 2
    at build time: the very first delivery runs through compiled code
    (no warmup iterations needed)."""
    spin = MRoutine(name="spin", entry=1, source="""
        li   t0, 24
    spin_loop:
        addi t1, t1, 3
        addi t0, t0, -1
        bnez t0, spin_loop
        mexit
    """)
    m = _machine([spin], threshold=None, preform=True)
    m.sim.tcache.jit_threshold = 16          # dynamic heat never reaches it
    tc = m.perf.tcache
    assert tc.preformed_blocks > 0, "preformation compiled no blocks"
    warmed = tc.jit_blocks
    assert warmed > 0, "preformation did not warm tier 2"
    m.load_and_run("_start:\n    menter 1\n    halt\n", base=CODE_BASE)
    assert tc.jit_instructions > 0, (
        "first delivery did not execute through tier 2")
