"""Preemptive multitasking via Metal-delivered timer interrupts."""

import pytest

from repro.osdemo.scheduler import (
    SCHED_SWITCHES,
    boot_scheduler_demo,
)

COUNTER0 = 0x6000
COUNTER1 = 0x6004
ERRFLAG = 0x6008


@pytest.fixture(scope="module")
def ran_machine():
    m = boot_scheduler_demo(quantum=3000)
    m.run(max_instructions=300_000, raise_on_limit=False)
    return m


class TestPreemption:
    def test_both_processes_progress(self, ran_machine):
        m = ran_machine
        assert m.read_word(COUNTER0) > 50
        assert m.read_word(COUNTER1) > 50

    def test_context_switches_happened(self, ran_machine):
        assert ran_machine.read_word(SCHED_SWITCHES) > 10

    def test_register_state_isolated(self, ran_machine):
        # each process checks its private s4 every iteration
        assert ran_machine.read_word(ERRFLAG) == 0

    def test_fair_interleaving(self, ran_machine):
        m = ran_machine
        c0, c1 = m.read_word(COUNTER0), m.read_word(COUNTER1)
        # round-robin with equal quanta: within 3x of each other
        assert min(c0, c1) * 3 > max(c0, c1)

    def test_no_faults(self, ran_machine):
        assert "F" not in ran_machine.output

    def test_processes_run_at_user_level(self, ran_machine):
        # when we stopped, whichever process was running is at level 1
        # (unless we happened to stop mid-kernel/mroutine)
        m = ran_machine
        level = m.mreg(0)
        assert level in (0, 1)

    def test_timer_keeps_rearming(self, ran_machine):
        m = ran_machine
        # compare is always in the near future relative to count
        assert m.timer.compare > 0


class TestQuantumScaling:
    def test_smaller_quantum_more_switches(self):
        results = {}
        for quantum in (2000, 8000):
            m = boot_scheduler_demo(quantum=quantum)
            m.run(max_instructions=150_000, raise_on_limit=False)
            results[quantum] = m.read_word(SCHED_SWITCHES)
        assert results[2000] > results[8000]

    def test_pipeline_engine_also_schedules(self):
        m = boot_scheduler_demo(quantum=3000, engine="pipeline")
        m.run(max_instructions=100_000, raise_on_limit=False)
        assert m.read_word(SCHED_SWITCHES) > 5
        assert m.read_word(ERRFLAG) == 0
