"""Cache timing-model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import Cache


def make_cache(**kw):
    defaults = dict(size=1024, line_size=32, ways=2, hit_latency=1,
                    miss_latency=10)
    defaults.update(kw)
    return Cache(**defaults)


class TestBasics:
    def test_first_access_misses(self):
        c = make_cache()
        assert c.access(0x100) == 11
        assert c.stats.misses == 1

    def test_second_access_hits(self):
        c = make_cache()
        c.access(0x100)
        assert c.access(0x100) == 1
        assert c.stats.hits == 1

    def test_same_line_hits(self):
        c = make_cache()
        c.access(0x100)
        assert c.access(0x11C) == 1  # same 32-byte line

    def test_next_line_misses(self):
        c = make_cache()
        c.access(0x100)
        assert c.access(0x120) == 11

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Cache(size=1000, line_size=32, ways=3)


class TestReplacement:
    def test_lru_eviction(self):
        c = make_cache()  # 2 ways, 16 sets
        set_stride = c.num_sets * c.line_size
        a, b, d = 0, set_stride, 2 * set_stride  # same set
        c.access(a)
        c.access(b)
        c.access(a)       # a is now MRU
        c.access(d)       # evicts b (LRU)
        assert c.probe(a)
        assert not c.probe(b)
        assert c.probe(d)

    def test_invalidate(self):
        c = make_cache()
        c.access(0x40)
        c.invalidate(0x40)
        assert not c.probe(0x40)

    def test_invalidate_all(self):
        c = make_cache()
        for i in range(8):
            c.access(i * 64)
        c.invalidate_all()
        assert not any(c.probe(i * 64) for i in range(8))


class TestStats:
    def test_hit_rate(self):
        c = make_cache()
        c.access(0)
        c.access(0)
        c.access(0)
        assert c.stats.hit_rate == pytest.approx(2 / 3)

    def test_reset(self):
        c = make_cache()
        c.access(0)
        c.stats.reset()
        assert c.stats.accesses == 0


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=200))
def test_capacity_invariant(addresses):
    """No set ever holds more tags than the associativity."""
    c = make_cache()
    for addr in addresses:
        c.access(addr)
    assert all(len(ways) <= c.ways for ways in c._sets)


@given(st.lists(st.integers(0, 0x3FF), min_size=1, max_size=100))
def test_rerun_is_deterministic(addresses):
    c1, c2 = make_cache(), make_cache()
    lat1 = [c1.access(a) for a in addresses]
    lat2 = [c2.access(a) for a in addresses]
    assert lat1 == lat2
