"""SPDK-style storage path (§3.4): user-level interrupts from the block
device, the second kernel-bypass workload the paper names."""

import pytest

from repro import build_metal_machine
from repro.mcode.privilege import make_kernel_user_routines
from repro.mcode.uli import make_uli_routines

FAULT_ENTRY = 0x1040
KIRQ_ENTRY = 0x1080


def storage_machine(latency=600):
    routines = (make_kernel_user_routines(0x2E00, FAULT_ENTRY)
                + make_uli_routines(KIRQ_ENTRY))
    m = build_metal_machine(routines)  # cached: the work loop runs hot
    m.blockdev.latency_cycles = latency
    m.blockdev.preload(5, b"sector five contents")
    return m


PROGRAM = """
_start:
    # kernel: route the block-device line to the user handler
    li   a0, uhandler
    li   a1, 1
    li   a2, IRQ_LINE_BLOCK
    menter MR_ULI_REGISTER
    li   ra, user
    menter MR_KEXIT
user:
    # enable the completion interrupt and issue a read of sector 5
    li   t0, BLK_IRQ_CTRL
    li   t1, 1
    sw   t1, 0(t0)
    li   t0, BLK_SECTOR
    li   t1, 5
    sw   t1, 0(t0)
    li   t0, BLK_DMA_ADDR
    li   t1, 0x7000
    sw   t1, 0(t0)
    li   t0, BLK_CMD
    li   t1, 1               # CMD_READ
    sw   t1, 0(t0)
    # do useful work while the IO is in flight (the SPDK contrast)
    li   s1, 0
work:
    addi s1, s1, 1
    beqz s5, work            # s5 set by the handler on completion
    halt

uhandler:
    li   t0, BLK_STATUS
    sw   zero, 0(t0)         # acknowledge the completion
    li   s5, 1
    menter MR_ULI_RET
"""


class TestStorageUli:
    def test_completion_delivered_to_user(self):
        m = storage_machine()
        m.load_and_run(PROGRAM, base=0x1000, max_instructions=200_000)
        assert m.reg("s5") == 1
        assert m.blockdev.completed == 1
        assert m.read_bytes(0x7000, 20) == b"sector five contents"

    def test_core_did_work_during_io(self):
        m = storage_machine(latency=2000)
        m.load_and_run(PROGRAM, base=0x1000, max_instructions=500_000)
        # roughly latency/loop-cost iterations of useful work happened
        assert m.reg("s1") > 100

    def test_latency_scales_with_device(self):
        cycles = {}
        for latency in (300, 3000):
            m = storage_machine(latency=latency)
            m.load_and_run(PROGRAM, base=0x1000, max_instructions=500_000)
            cycles[latency] = m.cycles
        assert cycles[3000] > cycles[300] + 2000

    def test_ack_required_for_level_line(self):
        # If the handler does not acknowledge, the level-triggered line
        # re-delivers immediately after uli_ret; with the ack it stays low.
        m = storage_machine()
        m.load_and_run(PROGRAM, base=0x1000, max_instructions=200_000)
        assert not m.blockdev.irq_pending()
