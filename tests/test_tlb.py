"""Software-managed TLB tests: ASIDs, page keys, permissions, eviction."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.metal_ops import (
    PERM_R,
    PERM_U,
    PERM_W,
    PERM_X,
    pack_pkr,
    pack_tlb_pa,
    pack_tlb_va,
    unpack_tlb_pa,
    unpack_tlb_va,
)
from repro.mmu import AccessType, Tlb, TlbEntry, TranslationFault
from repro.mmu.types import FaultKind


def entry(vpn, ppn, **kw):
    kw.setdefault("perms", PERM_R | PERM_W | PERM_X)
    return TlbEntry(vpn=vpn, ppn=ppn, **kw)


def make_tlb(entries=4, enabled=True):
    tlb = Tlb(entries)
    tlb.enabled = enabled
    return tlb


class TestTranslation:
    def test_identity_when_disabled(self):
        tlb = make_tlb(enabled=False)
        assert tlb.translate(0x12345678, AccessType.LOAD) == 0x12345678

    def test_basic_translation(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=0x400, ppn=0x80))
        assert tlb.translate(0x400123, AccessType.LOAD) == 0x80123

    def test_miss_raises(self):
        tlb = make_tlb()
        with pytest.raises(TranslationFault) as err:
            tlb.translate(0x1000, AccessType.FETCH)
        assert err.value.kind is FaultKind.MISS
        assert err.value.va == 0x1000

    def test_permission_fault_per_access(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1, perms=PERM_R))
        assert tlb.translate(0x1000, AccessType.LOAD) == 0x1000
        for access in (AccessType.STORE, AccessType.FETCH):
            with pytest.raises(TranslationFault) as err:
                tlb.translate(0x1000, access)
            assert err.value.kind is FaultKind.PROTECTION

    def test_user_bit(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1, perms=PERM_R))          # supervisor
        tlb.insert(entry(vpn=2, ppn=2, perms=PERM_R | PERM_U))  # user ok
        assert tlb.translate(0x2000, AccessType.LOAD, user=True) == 0x2000
        with pytest.raises(TranslationFault):
            tlb.translate(0x1000, AccessType.LOAD, user=True)
        # supervisor can read the supervisor page
        assert tlb.translate(0x1000, AccessType.LOAD, user=False) == 0x1000


class TestAsid:
    def test_asid_isolation(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=5, ppn=10, asid=1))
        tlb.insert(entry(vpn=5, ppn=20, asid=2))
        tlb.current_asid = 1
        assert tlb.translate(0x5000, AccessType.LOAD) >> 12 == 10
        tlb.current_asid = 2
        assert tlb.translate(0x5000, AccessType.LOAD) >> 12 == 20

    def test_global_matches_any_asid(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=7, ppn=7, global_=True, asid=0))
        tlb.current_asid = 99
        assert tlb.translate(0x7000, AccessType.LOAD) == 0x7000

    def test_flush_by_asid_keeps_globals(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1, asid=3))
        tlb.insert(entry(vpn=2, ppn=2, global_=True))
        dropped = tlb.flush(asid=3)
        assert dropped == 1
        assert len(tlb) == 1


class TestPageKeys:
    def test_key_access_disable(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1, key=4))
        tlb.pkr = pack_pkr(disabled_keys=[4])
        with pytest.raises(TranslationFault) as err:
            tlb.translate(0x1000, AccessType.LOAD)
        assert err.value.kind is FaultKind.KEY
        tlb.pkr = pack_pkr()
        assert tlb.translate(0x1000, AccessType.LOAD) == 0x1000

    def test_key_write_disable_allows_reads(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1, key=2))
        tlb.pkr = pack_pkr(write_disabled_keys=[2])
        assert tlb.translate(0x1000, AccessType.LOAD) == 0x1000
        with pytest.raises(TranslationFault):
            tlb.translate(0x1000, AccessType.STORE)

    def test_key_zero_never_checked(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1, key=0))
        tlb.pkr = 0xFFFFFFFF
        assert tlb.translate(0x1000, AccessType.LOAD) == 0x1000

    def test_batch_permission_flip(self):
        """The §2.3 selling point: one PKR write flips many pages."""
        tlb = make_tlb(entries=16)
        for vpn in range(8):
            tlb.insert(entry(vpn=vpn + 1, ppn=vpn + 1, key=5))
        tlb.pkr = pack_pkr(disabled_keys=[5])
        faults = 0
        for vpn in range(8):
            try:
                tlb.translate((vpn + 1) << 12, AccessType.LOAD)
            except TranslationFault:
                faults += 1
        assert faults == 8


class TestManagement:
    def test_insert_replaces_same_vpn(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1))
        tlb.insert(entry(vpn=1, ppn=9))
        assert len(tlb) == 1
        assert tlb.translate(0x1000, AccessType.LOAD) >> 12 == 9

    def test_round_robin_eviction(self):
        tlb = make_tlb(entries=2)
        tlb.insert(entry(vpn=1, ppn=1))
        tlb.insert(entry(vpn=2, ppn=2))
        tlb.insert(entry(vpn=3, ppn=3))  # evicts vpn=1
        assert tlb.lookup(1) is None
        assert tlb.lookup(2) is not None

    def test_invalidate(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1))
        assert tlb.invalidate(1, 0) is True
        assert tlb.invalidate(1, 0) is False

    def test_stats(self):
        tlb = make_tlb()
        tlb.insert(entry(vpn=1, ppn=1))
        tlb.translate(0x1000, AccessType.LOAD)
        try:
            tlb.translate(0x2000, AccessType.LOAD)
        except TranslationFault:
            pass
        assert (tlb.hits, tlb.misses) == (1, 1)


class TestOperandPacking:
    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 255))
    def test_va_pack_roundtrip(self, va, asid):
        vpn, got_asid = unpack_tlb_va(pack_tlb_va(va, asid))
        assert vpn == (va >> 12)
        assert got_asid == asid

    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0x1F), st.integers(0, 15))
    def test_pa_pack_roundtrip(self, pa, perms, key):
        ppn, got_perms, got_key = unpack_tlb_pa(pack_tlb_pa(pa, perms, key))
        assert ppn == pa >> 12
        assert got_perms == perms
        assert got_key == key


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 3)),
                min_size=1, max_size=120))
def test_capacity_never_exceeded(ops):
    tlb = Tlb(8)
    tlb.enabled = True
    for vpn, asid in ops:
        tlb.insert(TlbEntry(vpn=vpn, ppn=vpn, asid=asid, perms=PERM_R))
    assert len(tlb) <= 8
