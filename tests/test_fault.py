"""MFI fault-injection subsystem tests (src/repro/fault).

Covers the injector's determinism and trigger exactness, one test per
campaign outcome class, the checkpoint/watchdog recovery runner
(including golden-equivalence of the recovered state), and the
bit-reproducibility of campaign reports across reruns and across the
worker pool.
"""

import functools

import pytest

from repro.errors import ReproError
from repro.fault.campaign import (
    CAMPAIGN_WORKLOADS, LOAD_BASE, CampaignConfig, _build, classify,
    golden_reference, report_json, run_campaign, state_digest,
)
from repro.fault.injector import (
    ALL_TARGETS, FaultSpec, FireReport, Trigger, random_spec,
    run_with_fault,
)
from repro.fault.recovery import CheckpointRunner


@functools.lru_cache(maxsize=None)
def golden(workload: str) -> dict:
    """Cached golden references (pure per workload)."""
    return golden_reference(workload)


def run_spec(workload: str, spec: FaultSpec):
    """One armed run + classification, exactly as the campaign does it."""
    g = golden(workload)
    machine, _ = _build(workload)
    budget = 4 * g["instret"] + 20_000
    exc = None
    try:
        fire = run_with_fault(machine, spec, budget)
    except Exception as caught:
        exc = caught
        fire = FireReport()
    outcome, detail = classify(
        machine, exc, fire, g, CAMPAIGN_WORKLOADS[workload].result_regs)
    return outcome, detail, fire, machine


@functools.lru_cache(maxsize=None)
def undecodable_spin_bit() -> int:
    """A bit whose flip makes the spin mroutine's first word raise a
    guest-visible decode fault when executed (found by search — the
    encoding is not hand-assumed by the tests)."""
    machine, _ = _build("mcode_heavy")
    offset = machine.metal_image.routines["spin"].code_offset
    for bit in range(32):
        spec = FaultSpec("mram_code_flip", Trigger("instret", 5),
                         address=offset, bit=bit)
        outcome, _, _, _ = run_spec("mcode_heavy", spec)
        if outcome == "detected_guest":
            return bit
    pytest.fail("no single-bit flip of the spin head word faults")


class TestSpecs:
    def test_random_spec_is_deterministic(self):
        for seed in range(40):
            a = random_spec(seed, horizon=1_000)
            b = random_spec(seed, horizon=1_000)
            assert a == b, f"seed {seed} not reproducible"
            assert a.target in ALL_TARGETS
            assert 1 <= a.trigger.value < 1_000
            assert a.describe()

    def test_dict_roundtrip(self):
        for seed in range(20):
            spec = random_spec(seed, horizon=500)
            assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("demonic_flip", Trigger("instret", 1))


class TestOutcomeClasses:
    """One deliberately constructed fault per campaign outcome."""

    def test_masked_dead_register_flip(self):
        # s11 (x27) is never read by tight_loop: the flip lands, the
        # run is architecturally unaffected, and — because the instret
        # trigger is exact and costs nothing — the retirement count
        # matches the golden run to the instruction.
        g = golden("tight_loop")
        spec = FaultSpec("gpr_flip", Trigger("instret", g["instret"] // 2),
                         index=26, bit=7)      # 1 + 26 % 31 == 27 == s11
        outcome, _, fire, _ = run_spec("tight_loop", spec)
        assert outcome == "masked"
        assert fire.fired and fire.applied
        assert fire.instructions == g["instret"]

    def test_silent_corruption_result_register_flip(self):
        # t1 accumulates a result; flipping it two instructions before
        # the halt leaves no time for detection or recomputation.
        g = golden("tight_loop")
        spec = FaultSpec("gpr_flip", Trigger("instret", g["instret"] - 2),
                         index=5, bit=0)       # 1 + 5 % 31 == 6 == t1
        outcome, _, fire, machine = run_spec("tight_loop", spec)
        assert outcome == "silent_corruption"
        assert machine.core.halted
        digest = state_digest(
            machine, CAMPAIGN_WORKLOADS["tight_loop"].result_regs)
        assert digest != g["digest"]

    def test_detected_guest_undecodable_mcode(self):
        offset = _spin_offset()
        spec = FaultSpec("mram_code_flip", Trigger("instret", 5),
                         address=offset, bit=undecodable_spin_bit())
        outcome, detail, _, _ = run_spec("mcode_heavy", spec)
        assert outcome == "detected_guest"
        assert detail

    def test_detected_mas_corrupt_but_halted(self):
        # The same corruption landing after the *last* spin invocation:
        # the guest halts none the wiser, but re-running the verifier
        # over current MRAM words flags the broken routine.
        g = golden("mcode_heavy")
        spec = FaultSpec("mram_code_flip",
                         Trigger("instret", g["instret"] - 2),
                         address=_spin_offset(),
                         bit=undecodable_spin_bit())
        outcome, detail, _, machine = run_spec("mcode_heavy", spec)
        assert outcome == "detected_mas"
        assert "spin" in detail
        assert machine.core.halted

    def test_hang_block_timeout_via_mmio_trigger(self):
        # A guest polling BLK_STATUS for completion hangs forever when
        # the third MMIO access (the CMD write) arms the timeout fault;
        # the step-budget watchdog classifies it.
        machine, _ = _build("tight_loop")
        program = machine.assemble("""
_start:
    li   t0, BLK_SECTOR
    sw   zero, 0(t0)
    li   t0, BLK_DMA_ADDR
    li   t1, 0x2000
    sw   t1, 0(t0)
    li   t0, BLK_CMD
    li   t1, 1                  # CMD_READ
    sw   t1, 0(t0)
    li   t0, BLK_STATUS
poll:
    lw   t1, 0(t0)
    li   t2, 2                  # STATUS_COMPLETE
    bne  t1, t2, poll
    halt
""", base=LOAD_BASE)
        machine.load(program)
        machine.core.pc = LOAD_BASE
        spec = FaultSpec("blk_timeout", Trigger("mmio", 3, "blockdev"))
        fire = run_with_fault(machine, spec, budget=5_000)
        assert fire.fired and fire.applied
        assert not machine.core.halted
        outcome, detail = classify(machine, None, fire, {"digest": None},
                                   ())
        assert outcome == "hang"
        assert "watchdog" in detail

    def test_host_crash_classification(self):
        # Non-ReproError exceptions classify as host_crash (the class
        # CI asserts to be empty); ReproErrors as detected_guest.
        machine, _ = _build("tight_loop")
        outcome, _ = classify(machine, RuntimeError("boom"), FireReport(),
                              {"digest": None}, ())
        assert outcome == "host_crash"
        outcome, _ = classify(machine, ReproError("trap"), FireReport(),
                              {"digest": None}, ())
        assert outcome == "detected_guest"


def _spin_offset() -> int:
    machine, _ = _build("mcode_heavy")
    return machine.metal_image.routines["spin"].code_offset


class TestRecovery:
    def test_rejects_non_instret_trigger(self):
        machine, _ = _build("tight_loop")
        runner = CheckpointRunner(machine)
        with pytest.raises(ReproError):
            runner.run(FaultSpec("gpr_flip", Trigger("pc", LOAD_BASE)))

    def test_clean_run_needs_no_recovery(self):
        machine, _ = _build("tight_loop")
        runner = CheckpointRunner(machine, interval=500)
        report = runner.run()
        assert report.failure == "none"
        assert not report.recovered and report.retries == 0
        assert report.checkpoints > 1
        assert machine.core.halted

    def test_detected_fault_recovers_to_golden_state(self):
        g = golden("mcode_heavy")
        machine, _ = _build("mcode_heavy")
        spec = FaultSpec("mram_code_flip", Trigger("instret", 60),
                         address=_spin_offset(),
                         bit=undecodable_spin_bit())
        runner = CheckpointRunner(machine, interval=40,
                                  budget=4 * g["instret"] + 20_000)
        report = runner.run(spec)
        assert report.failure == "detected"
        assert report.recovered
        assert machine.core.halted
        # One-shot fault: the replay from a clean snapshot reaches the
        # golden final state bit-for-bit.
        digest = state_digest(
            machine, CAMPAIGN_WORKLOADS["mcode_heavy"].result_regs)
        assert digest == g["digest"]

    def test_hang_fault_recovers_through_poisoned_ring(self):
        # Flipping a high bit of the loop counter makes the remaining
        # trip count astronomically large: the watchdog expires, the
        # post-fault checkpoints replay the same hang, and the runner
        # falls back past them (origin at worst) to a clean halt.
        g = golden("tight_loop")
        machine, _ = _build("tight_loop")
        spec = FaultSpec("gpr_flip", Trigger("instret", g["instret"] // 2),
                         index=4, bit=30)      # 1 + 4 % 31 == 5 == t0
        runner = CheckpointRunner(machine, interval=300, budget=20_000)
        report = runner.run(spec)
        assert report.failure == "hang"
        assert report.recovered
        assert report.retries >= 1
        assert machine.core.halted
        digest = state_digest(
            machine, CAMPAIGN_WORKLOADS["tight_loop"].result_regs)
        assert digest == g["digest"]


class TestCampaign:
    CONFIG = dict(workloads=("tight_loop", "mcode_heavy"),
                  seeds=tuple(range(8)))

    def test_report_bit_reproducible(self):
        a = run_campaign(CampaignConfig(**self.CONFIG))
        b = run_campaign(CampaignConfig(**self.CONFIG))
        assert report_json(a) == report_json(b)
        assert a["summary"]["runs"] == 16
        assert a["summary"]["total"]["host_crash"] == 0
        assert sum(a["summary"]["total"].values()) == 16

    def test_pool_matches_inline(self):
        inline = run_campaign(CampaignConfig(**self.CONFIG, workers=0))
        pooled = run_campaign(CampaignConfig(**self.CONFIG, workers=2))
        assert report_json(inline) == report_json(pooled)

    def test_every_run_terminates_and_is_classified(self):
        report = run_campaign(CampaignConfig(
            workloads=("syscall_heavy",), seeds=tuple(range(6))))
        for run in report["runs"]:
            assert run["outcome"] in (
                "masked", "detected_guest", "detected_mas",
                "silent_corruption", "hang")
            assert run["instructions"] >= 0
            assert run["spec_text"]
