"""MVTV translation-validator tests (:mod:`repro.verify`).

Four angles:

* corpus cleanliness — every block MJIT compiles across a slice of the
  conformance seed space proves equivalent to its uop IR;
* golden symbolic summaries — the canonical reference summaries of
  three representative hand-written blocks are pinned byte-for-byte
  (``tests/golden/verify_*.txt``), so canonicalisation changes surface
  as diffs rather than silent behaviour shifts;
* mutation detection — seeding a codegen template bug or a loop-guard
  bug makes the validator fail the affected block with a precise
  citation (the acceptance property: a wrong compiler cannot pass);
* exhaustiveness — every uop IR kind and every ALU/branch mnemonic the
  execution model dispatches has a validator rule, so adding a new one
  without teaching the validator fails this suite.
"""

from __future__ import annotations

import contextlib
import pathlib

import pytest

from repro import build_metal_machine
from repro.errors import ExecutionLimitExceeded
from repro.cpu import alu, jit
from repro.cpu import tcache as tcache_mod
from repro.machine.builder import MachineConfig
from repro.verify.corpus import validate_corpus
from repro.verify.model import render_summary
from repro.verify.translate import validate_block
from repro.verify.uopsem import (
    BRANCH_SEM, IMM_SEM, IR_RULES, REG_SEM, reference_summary,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
CODE_BASE = 0x1000

#: Self-loop of reg-imm ALU ops: batched retire/cycle accounting and the
#: loop-generalisation machinery.
LOOP = """
_start:
    li t0, 50
loop:
    addi t1, t1, 1
    addi t0, t0, -1
    bnez t0, loop
    halt
"""

#: Load + store in the loop body: sync prologue, memory trap forks and
#: the store-abort (SMC) exit.
MEMLOOP = """
_start:
    li s0, 5
    li s1, 0x2000
loop:
    lw t0, 0(s1)
    addi t0, t0, 3
    sw t0, 4(s1)
    addi s0, s0, -1
    bnez s0, loop
    halt
"""

#: Muldiv dispatch plus the signed-comparison and arithmetic-shift
#: canonicalisations.
MIXLOOP = """
_start:
    li a0, 40
    li a1, 7
loop:
    mul a2, a0, a1
    srai a3, a2, 3
    slt a4, a3, a0
    addi a0, a0, -1
    bnez a0, loop
    halt
"""


def _machine():
    machine = build_metal_machine(
        [], config=MachineConfig(with_caches=False, jit=True))
    machine.sim.tcache.jit_threshold = 1
    return machine


def _compiled_blocks(source):
    machine = _machine()
    machine.load_and_run(source, base=CODE_BASE, max_instructions=100_000)
    return list(machine.sim.tcache.iter_jit_blocks())


def _looped_block(source):
    blocks = [block for ns, block in _compiled_blocks(source) if ns == "mem"]
    assert blocks, "program compiled no tier-2 blocks"
    looped = [b for b in blocks
              if reference_summary(b, "mem").looped]
    assert len(looped) == 1, "expected exactly one looped block"
    return looped[0]


# ---------------------------------------------------------------------------
# corpus cleanliness
# ---------------------------------------------------------------------------

def test_corpus_slice_validates_clean():
    report = validate_corpus(range(6))
    assert report.findings == []
    assert report.blocks_validated > 0
    assert report.mem_blocks > 0
    assert report.blocks_seen >= report.blocks_validated


def test_hand_written_programs_validate_clean():
    for source in (LOOP, MEMLOOP, MIXLOOP):
        for ns, block in _compiled_blocks(source):
            assert validate_block(ns, block) == []


# ---------------------------------------------------------------------------
# golden symbolic summaries
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name,source", [
    ("verify_loop", LOOP),
    ("verify_memloop", MEMLOOP),
    ("verify_mixloop", MIXLOOP),
])
def test_golden_reference_summary(name, source):
    block = _looped_block(source)
    text = render_summary(reference_summary(block, "mem"))
    golden = (GOLDEN_DIR / f"{name}.txt").read_text()
    assert text == golden, (
        f"canonical summary of {name} changed; if intended, regenerate "
        f"tests/golden/{name}.txt (see docs/VALIDATION.md)")


# ---------------------------------------------------------------------------
# mutation detection
# ---------------------------------------------------------------------------

def test_detects_corrupted_imm_template(monkeypatch):
    """An off-by-one in the addi codegen template must fail validation
    with a citation of the affected block."""
    real = jit._imm_rhs

    def corrupt(m, a, imm):
        if m == "addi":
            return f"({a} + {imm + 1}) & 4294967295"
        return real(m, a, imm)

    monkeypatch.setattr(jit, "_imm_rhs", corrupt)
    machine = _machine()
    # The corrupted decrement turns the loop infinite; the limit stop is
    # fine — the block is compiled either way.
    with contextlib.suppress(ExecutionLimitExceeded):
        machine.load_and_run(LOOP, base=CODE_BASE, max_instructions=10_000)
    findings = []
    cited = []
    for ns, block in machine.sim.tcache.iter_jit_blocks():
        fs = validate_block(ns, block)
        findings.extend(fs)
        cited.extend(f.where for f in fs)
    assert findings, "corrupted addi template was not detected"
    assert any("mem:0x" in where for where in cited)


def test_detects_broken_loop_guard(monkeypatch):
    """Dropping the budget clause from the self-loop guard changes the
    loop-exit protocol and must be caught."""
    monkeypatch.setattr(
        jit._Codegen, "_self_loop_guard",
        lambda self: "loops < limit")
    machine = _machine()
    machine.load_and_run(LOOP, base=CODE_BASE, max_instructions=100_000)
    findings = []
    for ns, block in machine.sim.tcache.iter_jit_blocks():
        findings.extend(validate_block(ns, block))
    assert findings, "broken self-loop guard was not detected"


# ---------------------------------------------------------------------------
# exhaustiveness: new kinds/mnemonics must fail until taught
# ---------------------------------------------------------------------------

def test_every_ir_kind_has_a_rule():
    kinds = {
        value for name, value in vars(tcache_mod).items()
        if name.startswith("IR_") and isinstance(value, int)
    }
    assert kinds, "no IR kinds found"
    assert set(IR_RULES) == kinds


MULDIV = frozenset(("mul", "mulh", "mulhsu", "mulhu",
                    "div", "divu", "rem", "remu"))


def test_every_alu_mnemonic_has_semantics():
    assert set(IMM_SEM) == set(alu.IMM_OPS)
    assert set(REG_SEM) | MULDIV == set(alu.REG_OPS)
    assert set(BRANCH_SEM) == set(alu.BRANCH_OPS)
