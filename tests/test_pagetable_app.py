"""§3.2 application tests: custom radix page tables + mroutine TLB refill."""

import pytest

from repro import build_metal_machine, Cause
from repro.mcode.pagetable import (
    PTE_G,
    PTE_R,
    PTE_U,
    PTE_W,
    PTE_X,
    PageTableBuilder,
    make_pagetable_routines,
)
from repro.errors import ReproError

MAILBOX = 0x2F00
FAULT_ENTRY = 0x1040
PT_POOL = 0x100000


def vm_machine():
    m = build_metal_machine(
        make_pagetable_routines(MAILBOX, FAULT_ENTRY), with_caches=False,
    )
    m.route_page_faults()
    return m


def standard_tables(m):
    pt = PageTableBuilder(m.bus, pool_base=PT_POOL)
    # identity-map kernel/user code+data, global supervisor+user
    pt.map_range(0x0, 0x0, 0x10000,
                 flags=PTE_R | PTE_W | PTE_X | PTE_U | PTE_G)
    return pt


BOOT = f"""
_start:
    j    boot
.org {FAULT_ENTRY:#x}
kfault:
    li   s10, 1              # forwarded-fault marker
    li   t0, {MAILBOX:#x}
    lw   s8, 0(t0)           # faulting VA
    lw   s9, 8(t0)           # cause
    halt
boot:
    li   a0, {PT_POOL:#x}
    li   a1, 0
    menter MR_PTROOT_SET
    li   a0, 1
    menter MR_PAGING_CTL
"""


class TestBuilder:
    def test_map_unmap(self):
        m = vm_machine()
        pt = PageTableBuilder(m.bus, pool_base=PT_POOL)
        pt.map(0x400000, 0x9000, flags=PTE_R)
        l1 = m.read_word(pt.root + 4 * (0x400000 >> 22))
        assert l1 & 1
        pt.unmap(0x400000)
        l2_base = l1 & 0xFFFFF000
        assert m.read_word(l2_base + 4 * ((0x400000 >> 12) & 0x3FF)) == 0

    def test_pool_exhaustion(self):
        m = vm_machine()
        pt = PageTableBuilder(m.bus, pool_base=PT_POOL, pool_bytes=8192)
        pt.map(0x0, 0x0)  # allocates the one available L2 table
        with pytest.raises(ReproError):
            pt.map(0x80000000, 0x0)  # needs a second L2 table

    def test_protect_requires_mapping(self):
        m = vm_machine()
        pt = PageTableBuilder(m.bus, pool_base=PT_POOL)
        with pytest.raises(ReproError):
            pt.protect(0x123000, PTE_R)


class TestWalkerRefill:
    def test_store_load_through_walker(self):
        m = vm_machine()
        pt = standard_tables(m)
        pt.map(0x400000, 0x80000, flags=PTE_R | PTE_W | PTE_G)
        m.load_and_run(BOOT + """
    li   t0, 0x400000
    li   t1, 0xFEED
    sw   t1, 0(t0)           # store fault -> walker refill -> retry
    lw   a0, 0(t0)
    halt
""")
        assert m.reg("a0") == 0xFEED
        assert m.read_word(0x80000) == 0xFEED
        # two refills: fetch fault for the code page, store fault for data
        assert m.core.metal.stats.deliveries.get(int(Cause.PAGE_FAULT_STORE)) == 1

    def test_refill_count_matches_pages_touched(self):
        m = vm_machine()
        pt = standard_tables(m)
        for i in range(8):
            pt.map(0x400000 + i * 4096, 0x80000 + i * 4096,
                   flags=PTE_R | PTE_W | PTE_G)
        m.load_and_run(BOOT + """
    li   t0, 0x400000
    li   t2, 8
touch:
    lw   t1, 0(t0)
    li   t3, 0x1000
    add  t0, t0, t3
    addi t2, t2, -1
    bnez t2, touch
    halt
""")
        assert m.core.metal.stats.deliveries.get(int(Cause.PAGE_FAULT_LOAD)) == 8

    def test_second_touch_hits_tlb(self):
        m = vm_machine()
        pt = standard_tables(m)
        pt.map(0x400000, 0x80000, flags=PTE_R | PTE_G)
        m.load_and_run(BOOT + """
    li   t0, 0x400000
    lw   t1, 0(t0)
    lw   t2, 0(t0)
    lw   t3, 0(t0)
    halt
""")
        assert m.core.metal.stats.deliveries.get(int(Cause.PAGE_FAULT_LOAD)) == 1


class TestFaultForwarding:
    def test_unmapped_page_forwards_to_os(self):
        m = vm_machine()
        standard_tables(m)
        m.load_and_run(BOOT + """
    li   t0, 0x700000        # never mapped
    lw   t1, 0(t0)
    halt
""")
        assert m.reg("s10") == 1
        assert m.reg("s8") == 0x700000
        assert m.reg("s9") == int(Cause.PAGE_FAULT_LOAD)

    def test_protection_violation_forwards(self):
        m = vm_machine()
        pt = standard_tables(m)
        pt.map(0x400000, 0x80000, flags=PTE_R | PTE_G)  # read-only
        m.load_and_run(BOOT + """
    li   t0, 0x400000
    lw   t1, 0(t0)           # fine (refill)
    sw   t1, 0(t0)           # write to read-only -> forwarded
    halt
""")
        assert m.reg("s10") == 1
        assert m.reg("s9") == int(Cause.PAGE_FAULT_STORE)

    def test_execute_from_noexec_forwards(self):
        m = vm_machine()
        pt = standard_tables(m)
        pt.map(0x400000, 0x80000, flags=PTE_R | PTE_G)  # no X
        m.load_and_run(BOOT + """
    li   t0, 0x400000
    jr   t0                  # fetch fault on a no-exec page
    halt
""")
        assert m.reg("s10") == 1
        assert m.reg("s9") == int(Cause.PAGE_FAULT_FETCH)


class TestVmManagement:
    def test_vm_inval_forces_rewalk(self):
        m = vm_machine()
        pt = standard_tables(m)
        pt.map(0x400000, 0x80000, flags=PTE_R | PTE_W | PTE_G)
        m.load_and_run(BOOT + """
    li   t0, 0x400000
    lw   t1, 0(t0)           # refill #1
    li   a0, 0x400000        # packed va|asid
    menter MR_VM_INVAL
    lw   t1, 0(t0)           # refill #2
    halt
""")
        assert m.core.metal.stats.deliveries.get(int(Cause.PAGE_FAULT_LOAD)) == 2

    def test_ptroot_set_requires_kernel(self):
        m = vm_machine()
        # also load the privilege routines to drop to user level
        from repro.mcode.privilege import make_kernel_user_routines

        routines = (make_pagetable_routines(MAILBOX, FAULT_ENTRY)
                    + make_kernel_user_routines(0x2E00, FAULT_ENTRY))
        m = build_metal_machine(routines, with_caches=False)
        m.route_page_faults()
        m.route_cause(Cause.PRIVILEGE, "priv_fault")
        m.load_and_run(f"""
_start:
    j    go
.org {FAULT_ENTRY:#x}
kfault:
    li   s0, 1
    halt
go:
    li   ra, user
    menter MR_KEXIT
user:
    li   a0, {PT_POOL:#x}
    li   a1, 0
    menter MR_PTROOT_SET     # user level -> privilege violation
    halt
""", base=0x1000)
        assert m.reg("s0") == 1

    def test_asid_switch_via_ptroot(self):
        m = vm_machine()
        pt = standard_tables(m)
        pt.map(0x400000, 0x80000, flags=PTE_R | PTE_W)  # asid 0, non-global
        m.write_word(0x80000, 0x111)
        m.load_and_run(BOOT + f"""
    li   t0, 0x400000
    lw   s0, 0(t0)           # asid 0 mapping
    # switch to asid 1 with the same table (entry tagged asid 1 now)
    li   a0, {PT_POOL:#x}
    li   a1, 1
    menter MR_PTROOT_SET
    li   t0, 0x400000
    lw   s1, 0(t0)           # miss (asid 1) -> refill with asid 1
    halt
""")
        assert m.reg("s0") == 0x111
        assert m.reg("s1") == 0x111
        assert m.core.metal.stats.deliveries.get(int(Cause.PAGE_FAULT_LOAD)) == 2
