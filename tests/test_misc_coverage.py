"""Coverage for smaller behaviours: KEY_FAULT cause, verifier fuzz,
program/disassembly helpers, nested machine inventory."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Cause,
    MRoutine,
    build_metal_machine,
    build_nested_metal_machine,
)
from repro.asm import assemble
from repro.isa.disasm import disassemble_block
from repro.metal.mroutine import MRoutine as MR
from repro.metal.verifier import verify_mroutine


class TestKeyFaultCause:
    def test_key_fault_distinct_from_page_fault(self):
        """A page-key denial must not look like a refillable page fault."""
        from repro.isa.metal_ops import pack_pkr
        from repro.mmu.types import TlbEntry

        grab = MRoutine(name="grab", entry=0, source="""
            rmr  s0, m28       # observed cause
            rmr  t0, m30
            addi t0, t0, 4
            wmr  m31, t0       # skip the faulting store
            mexit
        """)
        m = build_metal_machine([grab], with_caches=False)
        m.route_cause(Cause.KEY_FAULT, "grab")
        m.core.tlb.insert(TlbEntry(vpn=0x700, ppn=0x80, perms=3, key=4,
                                   global_=True))
        m.core.tlb.insert(TlbEntry(vpn=1, ppn=1, perms=7, global_=True))
        m.core.tlb.pkr = pack_pkr(write_disabled_keys=[4])
        m.core.tlb.enabled = True
        m.load_and_run("""
_start:
    li   t1, 0x700000
    sw   t1, 0(t1)          # write-disabled key -> KEY_FAULT
    halt
""", base=0x1000)
        assert m.reg("s0") == int(Cause.KEY_FAULT)

    def test_cause_symbol_available_to_asm(self):
        prog = assemble("addi a0, zero, CAUSE_KEY_FAULT",
                        symbols={"CAUSE_KEY_FAULT": int(Cause.KEY_FAULT)})
        assert prog.size == 4


@given(st.lists(st.integers(0, 0xFFFFFFFF), min_size=0, max_size=64))
@settings(max_examples=150)
def test_verifier_never_crashes_on_garbage(words):
    """The verifier must report, not raise, for arbitrary code images."""
    routine = MR(name="fuzz", entry=0, source="mexit\n")
    routine.code_words = list(words)
    routine.data_offset = 0
    report = verify_mroutine(routine, allowed_data_ranges=[(0, 64)])
    assert report.instruction_count == len(words)
    if not words:
        assert not report.ok


class TestProgramHelpers:
    def test_word_at(self):
        prog = assemble(".word 0xAABBCCDD, 0x11223344", base=0x100)
        assert prog.word_at(0x104) == 0x11223344

    def test_end_and_size(self):
        prog = assemble("nop\nnop\n", base=0x10)
        assert prog.size == 8
        assert prog.end == 0x18

    def test_symbol_lookup(self):
        prog = assemble("x:\n nop\n")
        assert prog.symbol("x") == 0
        with pytest.raises(KeyError):
            prog.symbol("missing")

    def test_disassemble_block_data_fallback(self):
        text = disassemble_block([0x00000013, 0xFFFFFFFF], base_addr=0x40)
        lines = text.splitlines()
        assert "addi" in lines[0]
        assert ".word 0xffffffff" in lines[1]
        assert lines[1].startswith("00000044:")


class TestNestedMachine:
    def test_builder_and_inventory(self):
        noop = MRoutine(name="noop", entry=0, source="mexit\n")
        m = build_nested_metal_machine([noop], layer_names=("vmm", "os"))
        assert m.name == "nested-metal"
        inv = m.inventory()
        assert "noop" in inv["mroutines"]
        assert len(m.core.metal.layers) == 2

    def test_base_delivery_is_layer_zero(self):
        noop = MRoutine(name="noop", entry=0, source="mexit\n")
        m = build_nested_metal_machine([noop])
        unit = m.core.metal
        assert unit.delivery is unit.layers[0].delivery

    def test_menter_still_works_in_layered_machine(self):
        double = MRoutine(name="double", entry=0,
                          source="add a0, a0, a0\nmexit\n")
        m = build_nested_metal_machine([double])
        m.load_and_run("_start:\n    li a0, 4\n    menter MR_DOUBLE\n    halt\n")
        assert m.reg("a0") == 8


class TestMachineReset:
    def test_reset_clears_architectural_state(self):
        noop = MRoutine(name="noop", entry=0, source="mexit\n")
        m = build_metal_machine([noop], with_caches=False)
        m.load_and_run("_start:\n    li a0, 5\n    menter MR_NOOP\n    halt\n")
        assert m.core.halted
        m.reset(pc=0x1000)
        assert m.core.pc == 0x1000
        assert not m.core.halted
        assert m.reg("a0") == 0
        assert not m.core.metal.in_metal
        # memory persists across reset
        assert m.read_word(0x1000) != 0

    def test_rerun_after_reset(self):
        noop = MRoutine(name="noop", entry=0, source="mexit\n")
        m = build_metal_machine([noop], with_caches=False)
        m.load_and_run("_start:\n    li a0, 7\n    halt\n")
        m.reset(pc=0x1000)
        m.run()
        assert m.reg("a0") == 7


class TestRegisterNames:
    def test_reg_name_num_roundtrip(self):
        from repro.isa.registers import reg_name, reg_num

        for i in range(32):
            assert reg_num(reg_name(i)) == i
        assert reg_num("x17") == reg_num("a7") == 17

    def test_mreg_helpers(self):
        from repro.errors import IsaError
        from repro.isa.registers import mreg_name, mreg_num

        assert mreg_num(mreg_name(31)) == 31
        with pytest.raises(IsaError):
            mreg_num("m32")
        with pytest.raises(IsaError):
            mreg_name(32)
