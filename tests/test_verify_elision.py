"""MVTV elision-soundness-audit tests (:mod:`repro.verify.elision`).

The audit re-derives MAS's proven-in-bounds ``mld``/``mst`` facts from
symbolic address expressions evaluated over an independently written
interval domain.  Covered here:

* the bundled applications audit clean — every fact MAS proves, the
  audit confirms (the parity property the pass relies on);
* a forged fact (a word MAS did *not* prove, injected into
  ``proven_access_words``) is flagged with the routine/word citation
  and the audited interval in the detail;
* a disagreement between ``proven_data_pcs()`` and the per-routine
  facts — the aggregation the JIT actually consumes — is flagged;
* unit checks of the :func:`repro.verify.elision.interval` evaluator.
"""

from __future__ import annotations

import pytest

from repro.analysis.lint import APPS, _builtin_symbols
from repro.metal.loader import load_mroutines
from repro.verify import elision
from repro.verify import sym as S
from repro.verify.elision import IV, audit_apps, audit_image, interval


def _image(name):
    return load_mroutines(APPS[name](), extra_symbols=_builtin_symbols(),
                          verify=True)


# ---------------------------------------------------------------------------
# clean tree
# ---------------------------------------------------------------------------

def test_bundled_apps_audit_clean():
    stats = {}
    assert audit_apps(stats=stats) == []
    assert stats["routines"] > 0
    assert stats["claimed_sites"] > 0


# ---------------------------------------------------------------------------
# mutation: a forged proven-access fact must be caught
# ---------------------------------------------------------------------------

def _find_unproven_site():
    """Some bundled routine with an mld/mst the bounds pass (rightly)
    did not prove — the forgery target."""
    for app in sorted(APPS):
        image = _image(app)
        for name, result in image.analysis.items():
            routine = image.routines.get(name)
            if routine is None or routine.code_words is None:
                continue
            ranges = elision._allowed_ranges(routine, image)
            proven, intervals = elision.audit_routine(routine, ranges)
            unproven = sorted(set(intervals) - proven)
            claimed = set(result.facts.proven_access_words)
            for word in unproven:
                if word not in claimed:
                    return app, image, name, result, word
    pytest.fail("no unproven mld/mst site in any bundled app")


def test_forged_fact_is_detected():
    app, image, name, result, word = _find_unproven_site()
    result.facts.proven_access_words = (
        tuple(result.facts.proven_access_words) + (word,))
    findings = audit_image(app, image)
    assert len(findings) == 1
    finding = findings[0]
    assert finding.pass_name == "elision"
    assert finding.where == f"{app}/{name}:word {word}"
    assert "audited address interval" in finding.detail


def test_aggregation_mismatch_is_detected():
    image = _image("stm")
    assert audit_image("stm", image) == []
    image.proven_data_pcs = lambda: []  # shadow the method on the instance
    findings = audit_image("stm", image)
    assert len(findings) == 1
    assert findings[0].where == "stm/<image>"
    assert "proven_data_pcs" in findings[0].message


# ---------------------------------------------------------------------------
# the interval evaluator
# ---------------------------------------------------------------------------

def test_interval_linear_sum():
    env = {"a": IV(0, 8)}
    assert interval(S.add(S.sym("a"), 4), env) == IV(4, 12)
    assert interval(S.sub(16, S.sym("a")), env) == IV(8, 16)


def test_interval_mask_low_bit_rule():
    # A value provably below the mask's lowest set bit masks to zero —
    # the precision step the sra canonicalisation depends on.
    env = {"a": IV(0, 0x7FFFFFFF)}
    assert interval(S.and_(S.sym("a"), 0x80000000), env) == IV(0, 0)


def test_interval_shift_and_unknown_leaf():
    env = {"a": IV(0, 3)}
    assert interval(S.shl(S.sym("a"), 2), env) == IV(0, 12)
    assert interval(S.sym("nope"), env) == elision.FULL
