"""§3.5 extension tests: shadow stack / CFI keys, capabilities, enclaves."""

import pytest

from repro import build_metal_machine, Cause
from repro.isa.metal_ops import pack_pkr
from repro.mcode.capability import make_capability_routines
from repro.mcode.enclave import ENCLAVE_LEVEL, make_enclave_routines
from repro.mcode.privilege import make_kernel_user_routines
from repro.mcode.shadowstack import make_shadowstack_routines

FAULT_ENTRY = 0x1040
SYSCALL_TABLE = 0x2E00

FAULT_STUB = f"""
    j    main
.org {FAULT_ENTRY:#x}
kfault:
    li   s11, 1              # fault marker
    halt
main:
"""


def machine(extra):
    routines = make_kernel_user_routines(SYSCALL_TABLE, FAULT_ENTRY) + extra
    m = build_metal_machine(routines, with_caches=False)
    m.route_cause(Cause.PRIVILEGE, "priv_fault")
    return m


class TestShadowStack:
    def _m(self):
        return machine(make_shadowstack_routines())

    def test_balanced_calls_pass(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    call f
    li   a0, 1
    halt
f:
    menter MR_SSPUSH
    mv   s2, ra              # callee-saved spill, as a compiler would
    call g
    mv   ra, s2
    menter MR_SSCHECK
    ret
g:
    menter MR_SSPUSH
    menter MR_SSCHECK
    ret
""", base=0x1000)
        assert m.reg("a0") == 1
        assert m.reg("s11") == 0

    def test_corrupted_return_detected(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    call f
    halt
f:
    menter MR_SSPUSH
    li   ra, 0x4444          # simulated stack-smash of the return address
    menter MR_SSCHECK        # mismatch -> privilege violation
    ret
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_underflow_detected(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    menter MR_SSCHECK        # empty shadow stack
    halt
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_overflow_detected(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   s0, 70              # deeper than SS_MAX = 64
loop:
    menter MR_SSPUSH
    addi s0, s0, -1
    bnez s0, loop
    halt
""", base=0x1000, max_instructions=100_000)
        assert m.reg("s11") == 1


class TestCfiKeys:
    def _m(self):
        return machine(make_shadowstack_routines())

    def test_sign_and_check(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 0x5ECDEF
    menter MR_CFIKEY_SET     # kernel installs the secret in m3
    li   ra, 0x1234
    menter MR_CFI_SIGN       # t0 := MAC(ra)
    mv   a0, t0
    menter MR_CFI_CHECK      # verifies, no fault
    li   s0, 1
    halt
""", base=0x1000)
        assert m.reg("s0") == 1
        assert m.reg("s11") == 0

    def test_wrong_mac_detected(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 0x5ECDEF
    menter MR_CFIKEY_SET
    li   ra, 0x1234
    li   a0, 0xBAD
    menter MR_CFI_CHECK
    halt
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_key_invisible_to_normal_mode(self):
        # The point of MReg key storage: normal-mode code cannot read m3 —
        # rmr is Metal-only and traps as illegal.
        m = self._m()
        m.route_cause(Cause.ILLEGAL_INSTRUCTION, "priv_fault")
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 0x5EC
    menter MR_CFIKEY_SET
    rmr  a1, m3              # illegal in normal mode -> fault path
    halt
""", base=0x1000, max_instructions=2000)
        assert m.reg("s11") == 1
        assert m.reg("a1") != 0x5EC

    def test_key_set_requires_kernel(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   ra, user
    menter MR_KEXIT
user:
    li   a0, 1
    menter MR_CFIKEY_SET     # user level -> fault
    halt
""", base=0x1000)
        assert m.reg("s11") == 1


class TestCapabilities:
    def _m(self):
        return machine(make_capability_routines())

    def test_create_load_store(self):
        m = self._m()
        m.write_word(0x8000, 0xAB)
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 0x8000
    li   a1, 64
    li   a2, 3               # R|W
    menter MR_CAP_CREATE
    mv   s0, a0              # capability index
    li   a1, 0
    menter MR_CAP_LOAD
    mv   s1, a0              # read through the capability
    mv   a0, s0
    li   a1, 4
    li   a2, 0xCD
    menter MR_CAP_STORE
    halt
""", base=0x1000)
        assert m.reg("s1") == 0xAB
        assert m.read_word(0x8004) == 0xCD
        assert m.reg("s11") == 0

    def test_bounds_enforced(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 0x8000
    li   a1, 64
    li   a2, 3
    menter MR_CAP_CREATE
    li   a1, 64              # offset == length: out of bounds
    menter MR_CAP_LOAD
    halt
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_partial_word_at_end_rejected(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 0x8000
    li   a1, 62              # not a full word at offset 60
    li   a2, 3
    menter MR_CAP_CREATE
    li   a1, 60
    menter MR_CAP_LOAD
    halt
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_write_permission_enforced(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 0x8000
    li   a1, 64
    li   a2, 1               # read-only capability
    menter MR_CAP_CREATE
    li   a1, 0
    li   a2, 5
    menter MR_CAP_STORE
    halt
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_minting_requires_kernel(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   ra, user
    menter MR_KEXIT
user:
    li   a0, 0x8000
    li   a1, 64
    li   a2, 3
    menter MR_CAP_CREATE
    halt
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_revocation(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 0x8000
    li   a1, 64
    li   a2, 3
    menter MR_CAP_CREATE
    mv   s0, a0
    menter MR_CAP_REVOKE     # a0 still the index
    mv   a0, s0
    li   a1, 0
    menter MR_CAP_LOAD       # revoked -> fault
    halt
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_bad_index_rejected(self):
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    li   a0, 5               # no capability 5 exists
    li   a1, 0
    menter MR_CAP_LOAD
    halt
""", base=0x1000)
        assert m.reg("s11") == 1


class TestEnclave:
    ENCLAVE_VA = 0x9000

    def _m(self):
        return machine(make_enclave_routines())

    def test_enter_exit_and_measurement(self):
        m = self._m()
        m.write_word(0x9000, 100)
        m.write_word(0x9004, 23)
        m.load_and_run(f"_start:{FAULT_STUB}" + f"""
    li   a0, enclave_entry
    li   a1, {self.ENCLAVE_VA:#x}
    li   a2, 1               # one page
    li   a3, 6               # page key for enclave pages
    menter MR_ECREATE
    li   ra, user
    menter MR_KEXIT
user:
    menter MR_EENTER
back:
    mv   s1, a0              # result from the enclave
    menter MR_EREPORT
    mv   s2, a0              # measurement
    halt
enclave_entry:
    menter MR_PRIV_GET
    mv   s0, a0              # level inside the enclave
    li   a0, 0x777
    menter MR_EEXIT
""", base=0x1000, max_instructions=200_000)
        assert m.reg("s0") == ENCLAVE_LEVEL
        assert m.reg("s1") == 0x777
        assert m.reg("s2") != 0          # measurement covered the pages
        assert m.reg("s11") == 0

    def test_eenter_from_kernel_rejected(self):
        # Only user level enters the enclave in this policy.
        m = self._m()
        m.load_and_run("_start:" + FAULT_STUB + """
    menter MR_EENTER         # still kernel level -> fault
    halt
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_key_locked_outside_enclave(self):
        m = self._m()
        m.load_and_run(f"_start:{FAULT_STUB}" + f"""
    li   a0, 0x9100
    li   a1, {self.ENCLAVE_VA:#x}
    li   a2, 1
    li   a3, 6
    menter MR_ECREATE
    halt
""", base=0x1000)
        # ecreate locked key 6 in the PKR
        assert m.core.tlb.pkr == pack_pkr(disabled_keys=[6])
