"""MCONF conformance subsystem tests.

Four layers, mirroring ``src/repro/conformance``:

* generator parity — the refactored generator is seed-for-seed
  identical to the one that lived in tests/test_superblock_differential
  (golden sha256 digests pinned for seeds 0-4), and its gated
  extensions actually emit what they claim while keeping programs
  terminating;
* oracle — the independent decode table agrees with the primary
  decoder on the exhaustive per-bucket sweep plus 100k seeded random
  words, and the crosscheck *detects* deliberately corrupted table
  rows (mutation test: a conformance net that can't catch a planted
  bug is worthless);
* coverage — bucket extraction from decoded words and the MAS CFG,
  plus the accumulating map;
* campaign — small five-way lockstep sweeps pass, reports are
  byte-identical between inline and worker-pool execution, and
  coverage-guided scheduling reaches decoder buckets that 500 unguided
  seeds provably never touch.
"""

from __future__ import annotations

import random

import pytest

from repro.conformance.campaign import (
    PROGRAM_SEED_BASE, ConformanceConfig, failures,
    measure_static_coverage, report_json, run_cell, run_conformance,
)
from repro.conformance.coverage import (
    BUCKET_UNIVERSE, CoverageMap, program_coverage,
)
from repro.conformance.crosscheck import (
    bucket_sweep_words, check_word, check_words, crosscheck_sweep,
)
from repro.conformance.generator import (
    GenConfig, assemble_words, gen_program, generate,
)
from repro.conformance.oracle import (
    IMM_SIGNED, ORACLE_SPECS, corrupted_table, oracle_decode,
)
from repro.conformance.scheduler import CoverageScheduler

# --------------------------------------------------------------------------
# generator parity
# --------------------------------------------------------------------------

#: sha256 of the generated source for rng=Random(0xC0DE+seed) with the
#: default config — captured from the pre-refactor in-test generator.
#: If one of these changes, the refactor broke seed-for-seed parity and
#: every historical fuzzing seed silently means a different program.
GOLDEN_DIGESTS = {
    0: "d385727eafd11d4ba0c9e2673894cdec1e34d38b96c8ed9261fdaa84cb711a62",
    1: "42ae55c9725dbd26b05dae6504124fb61cdec01e94118b39e672526f9136d691",
    2: "d38a2be9523fb7258a0d7c5155dab5cdfaa9b12ba0aad5e95595457d16ea585d",
    3: "71522ab46af04c5cc36f40b159c832ac7f16dd43080e4dc303a5f8d7b703b62f",
    4: "42d97010c6691de2367f42f24cdb491c7479e209f8f5c746d2e712cdf9749c8b",
}


@pytest.mark.parametrize("seed", sorted(GOLDEN_DIGESTS))
def test_generator_golden_digest(seed):
    result = generate(random.Random(PROGRAM_SEED_BASE + seed), GenConfig())
    assert result.digest == GOLDEN_DIGESTS[seed], (
        f"seed {seed}: generator no longer reproduces the pre-refactor "
        f"program (digest {result.digest})"
    )


def test_default_config_adds_no_marks_or_traps():
    config = GenConfig()
    assert not config.extended
    assert not config.needs_traps
    result = generate(random.Random(123), config)
    # Only marks the legacy generator could emit.
    assert result.gen_buckets <= {"gen:menter", "gen:smc"}


def test_gen_program_matches_generate():
    rng1, rng2 = random.Random(7), random.Random(7)
    assert gen_program(rng1) == generate(rng2).source


@pytest.mark.parametrize("feature,needle", [
    ("csr", "csrr"),
    ("auipc_mem", "auipc"),
    ("misalign", "(s1)"),
    ("divrem", ("div", "rem")),
    ("unsigned_branch", "lui  t5"),
])
def test_extensions_emit_their_instructions(feature, needle):
    config = GenConfig(**{feature: 1.0}, ext_rate=0.9)
    needles = needle if isinstance(needle, tuple) else (needle,)
    hits = 0
    for seed in range(6):
        result = generate(random.Random(PROGRAM_SEED_BASE + seed), config)
        if any(n in result.source for n in needles):
            hits += 1
            assert any(b.startswith("gen:") and feature.split("_")[0] in b
                       for b in result.gen_buckets), (
                f"{feature}: instruction emitted but gen mark missing")
    assert hits >= 4, f"{feature}: emitted in only {hits}/6 seeds"


def test_extended_programs_still_terminate_and_lockstep():
    """All extensions at max weight: programs must still halt and keep
    the five machines in lockstep (trap delivery is guest-visible state,
    so the fast paths must replay it exactly)."""
    config = GenConfig(csr=1.0, auipc_mem=1.0, misalign=1.0,
                       divrem=1.0, unsigned_branch=0.4, ext_rate=0.5)
    for seed in (0, 1, 2):
        record = run_cell(seed, config)
        assert record["outcome"] == "pass", (
            f"seed {seed}: {record['outcome']} — {record['detail']}")
        assert record["instret"] > 0


# --------------------------------------------------------------------------
# oracle vs primary decoder
# --------------------------------------------------------------------------

def test_oracle_bucket_sweep_agrees():
    words = bucket_sweep_words()
    disagreements = check_words(words)
    assert disagreements == [], (
        f"{len(disagreements)} bucket-sweep disagreement(s), first: "
        f"{disagreements[:3]}"
    )


def test_oracle_random_100k_agrees():
    rng = random.Random(0xF00D)
    bad = []
    for _ in range(100_000):
        word = rng.getrandbits(32)
        record = check_word(word)
        if record is not None:
            bad.append(record)
    assert bad == [], f"{len(bad)} random-word disagreement(s): {bad[:3]}"


def test_oracle_decodes_known_words():
    # addi a0, a0, 1  ->  imm=1, rd=rs1=10
    addi = oracle_decode(0x00150513)
    assert addi["mnemonic"] == "addi" and addi["imm"] == 1
    assert addi["rd"] == 10 and addi["rs1"] == 10
    # negative immediate sign-extends
    addi_neg = oracle_decode(0xFFF50513)
    assert addi_neg["imm"] == -1
    # an all-ones word decodes nowhere
    assert oracle_decode(0xFFFFFFFF) is None


@pytest.mark.parametrize("index", [0, 10, 26, 45, 55, 60, 70])
def test_mutation_value_corruption_is_caught(index):
    """Flipping a match-value bit in any table row must surface as a
    crosscheck disagreement somewhere in the bucket sweep."""
    spec = ORACLE_SPECS[index]
    table = corrupted_table(index, value=spec.value ^ 0x1000)  # flip a f3 bit
    sweep = crosscheck_sweep(n_random=2_000, table=table)
    assert sweep["n_disagreements"] > 0, (
        f"corrupting row {index} ({spec.mnemonic}) went undetected"
    )


def test_mutation_imm_kind_corruption_is_caught():
    """Misinterpreting the CSR immediate as signed must be detected."""
    index = next(i for i, s in enumerate(ORACLE_SPECS)
                 if s.mnemonic == "csrrw")
    table = corrupted_table(index, imm_kind=IMM_SIGNED)
    sweep = crosscheck_sweep(n_random=2_000, table=table)
    assert sweep["n_disagreements"] > 0


def test_mutation_dropped_row_is_caught():
    """Widening a row's mask so it never matches (the oracle 'forgets'
    an instruction) must be detected: primary decodes, oracle rejects."""
    index = next(i for i, s in enumerate(ORACLE_SPECS)
                 if s.mnemonic == "mul")
    table = corrupted_table(index, value=ORACLE_SPECS[index].value ^ 0x7F)
    sweep = crosscheck_sweep(n_random=0, table=table)
    assert sweep["n_disagreements"] > 0


def test_crosscheck_sweep_clean():
    sweep = crosscheck_sweep(n_random=5_000)
    assert sweep["n_disagreements"] == 0
    assert sweep["disagreements"] == []
    assert sweep["checked"] > len(bucket_sweep_words())


# --------------------------------------------------------------------------
# coverage
# --------------------------------------------------------------------------

def test_program_coverage_buckets():
    source = """
_start:
    addi a0, a0, 1
    mul  a1, a0, a0
loop:
    addi s0, s0, -1
    bne  s0, zero, loop
    j    tail
tail:
    halt
"""
    words = assemble_words(source)
    buckets = program_coverage(words)
    assert "dec:addi" in buckets
    assert "dec:mul" in buckets
    assert "dec:bne" in buckets
    assert "dec:halt" in buckets
    assert "cls:ALU_IMM" in buckets
    assert "cls:MULDIV" in buckets
    assert "edge:branch_taken_back" in buckets
    assert "edge:branch_fall" in buckets
    assert "edge:jump_fwd" in buckets
    # halt ends the program, so straight-line flow "falls off" the CFG
    # (edge:exit is the mexit terminator, seen only in mroutine words)
    assert "edge:fall_off" in buckets
    # every observed bucket is inside the declared universe
    assert buckets <= BUCKET_UNIVERSE


def test_coverage_map_accumulates():
    cov = CoverageMap()
    new = cov.add({"dec:addi", "dec:mul"})
    assert new == {"dec:addi", "dec:mul"}
    new = cov.add({"dec:addi", "dec:halt"})
    assert new == {"dec:halt"}
    assert cov.count("dec:addi") == 2
    assert cov.count("dec:mul") == 1
    assert cov.covered("dec:halt")
    assert not cov.covered("dec:div")
    assert "dec:div" in cov.uncovered()
    summary = cov.summary()
    assert summary["covered"] == 3
    assert summary["universe"] == len(BUCKET_UNIVERSE)
    assert summary["by_family"] == {"dec": 3}


def test_bucket_universe_is_closed():
    """Coverage of arbitrary generated programs never leaves the
    declared universe (a leak would make `missed` lists lie)."""
    for seed in range(5):
        config = GenConfig(csr=1.0, misalign=1.0, divrem=1.0,
                           auipc_mem=1.0, unsigned_branch=0.4)
        result = generate(random.Random(seed), config)
        words = assemble_words(result.source, config)
        buckets = result.gen_buckets | program_coverage(words)
        assert buckets <= BUCKET_UNIVERSE, buckets - BUCKET_UNIVERSE


# --------------------------------------------------------------------------
# scheduler
# --------------------------------------------------------------------------

def test_scheduler_is_pure_and_strided():
    sched = CoverageScheduler(guided=True)
    cov = CoverageMap()
    cov.add({"gen:csr", "cls:CSR"})
    # pure: same (seed, coverage) -> same config
    assert sched.next_config(5, cov) == sched.next_config(5, cov)
    # legacy stride: every 4th seed is the unextended generator
    assert sched.next_config(0, cov) == GenConfig()
    assert sched.next_config(4, cov) == GenConfig()
    # unguided: always legacy
    unguided = CoverageScheduler(guided=False)
    assert unguided.next_config(5, cov) == GenConfig()


def test_scheduler_targets_uncovered_features():
    sched = CoverageScheduler(guided=True)
    empty = CoverageMap()
    config = sched.next_config(1, empty)
    # with nothing covered, every body feature is targeted at 0.9
    assert config.csr == 0.9
    assert config.divrem == 0.9
    assert config.misalign == 0.9
    assert 0 < config.unsigned_branch <= 0.4


# --------------------------------------------------------------------------
# campaign
# --------------------------------------------------------------------------

def test_small_campaign_all_pass():
    config = ConformanceConfig(seeds=tuple(range(8)), workers=0,
                               round_size=4, oracle_random_words=1_000)
    report = run_conformance(config)
    outcomes = report["summary"]["outcomes"]
    assert outcomes["pass"] == 8, report["summary"]
    assert failures(report) == 0
    assert report["oracle"]["n_disagreements"] == 0
    assert len(report["runs"]) == 8
    # seed order is stable and every run carries its buckets
    assert [r["seed"] for r in report["runs"]] == list(range(8))
    assert all(r["buckets"] for r in report["runs"])


def test_pool_and_inline_reports_are_byte_identical():
    base = dict(seeds=tuple(range(8)), round_size=4,
                oracle_random_words=500)
    inline = run_conformance(ConformanceConfig(workers=0, **base))
    pooled = run_conformance(ConformanceConfig(workers=2, **base))
    assert report_json(inline) == report_json(pooled)


def test_unguided_seed_matches_classic_fuzzer_program():
    """Unguided campaign seed N runs the exact program the four-way
    fuzzer's seed N runs (same rng base, same default config)."""
    record = run_cell(3, GenConfig())
    assert record["source_sha"] == GOLDEN_DIGESTS[3]
    assert record["outcome"] == "pass"


def test_campaign_detects_planted_decode_bug():
    """End-to-end mutation: a campaign cell cross-checked against a
    corrupted oracle table classifies as decode_disagreement.  (Patched
    via check_words' table path to avoid a global.)"""
    table = corrupted_table(0, value=ORACLE_SPECS[0].value ^ 0x7F)
    words = assemble_words(gen_program(random.Random(PROGRAM_SEED_BASE)))
    assert check_words(words, table=table), (
        "corrupted lui row not detected on a real program")


def test_guided_reaches_buckets_unguided_misses():
    """The acceptance criterion: coverage-guided scheduling reaches at
    least one *decoder* bucket that 500 unguided seeds never touch."""
    unguided = measure_static_coverage(500, guided=False)
    guided = measure_static_coverage(120, guided=True)
    guided_only = {b for b in guided.buckets - unguided.buckets
                   if b.startswith("dec:")}
    assert guided_only, (
        "guided scheduling reached no decoder bucket beyond the "
        "500-seed unguided baseline"
    )
    # and the unguided baseline is sane: it covers the legacy core
    assert unguided.covered("dec:addi")
    assert unguided.covered("edge:branch_taken_back")
