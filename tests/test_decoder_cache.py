"""Decoder U/J-format bucketing and the honest decode memo cache."""

from __future__ import annotations

import pytest

from repro.errors import DecodeError
from repro.isa import decoder


@pytest.fixture(autouse=True)
def _fresh_cache():
    decoder.clear_cache()
    yield
    decoder.clear_cache()


OP_LUI = 0x37
OP_AUIPC = 0x17
OP_JAL = 0x6F


def _lui(rd: int, imm: int) -> int:
    return (imm & 0xFFFFF000) | (rd << 7) | OP_LUI


def _jal(rd: int, imm: int) -> int:
    word = OP_JAL | (rd << 7)
    word |= ((imm >> 20) & 1) << 31
    word |= ((imm >> 12) & 0xFF) << 12
    word |= ((imm >> 11) & 1) << 20
    word |= ((imm >> 1) & 0x3FF) << 21
    return word


class TestUJFormatBucketing:
    """U/J instructions have no funct3 — bits 14:12 belong to the
    immediate and must not affect spec lookup."""

    @pytest.mark.parametrize("imm", [0x1000, 0x3000, 0x7000, 0xABCDE000])
    def test_lui_with_nonzero_funct3_bits(self, imm):
        instr = decoder.decode(_lui(5, imm))
        assert instr.mnemonic == "lui"
        assert instr.rd == 5
        assert instr.imm == imm & 0xFFFFF000

    @pytest.mark.parametrize("imm", [0x1000, 0x5000, 0xFF000])
    def test_auipc_with_nonzero_funct3_bits(self, imm):
        word = (imm & 0xFFFFF000) | (3 << 7) | OP_AUIPC
        instr = decoder.decode(word)
        assert instr.mnemonic == "auipc"
        assert instr.imm == imm

    @pytest.mark.parametrize("imm", [0x2000, 0x13000, 0xFF000, -0x4000])
    def test_jal_with_nonzero_funct3_bits(self, imm):
        # imm bits 19:12 of J-type live exactly where funct3 would be.
        instr = decoder.decode(_jal(1, imm))
        assert instr.mnemonic == "jal"
        assert instr.rd == 1
        assert instr.imm == imm

    def test_unknown_opcode_still_rejected(self):
        with pytest.raises(DecodeError):
            decoder.decode(0x0000007B)


class TestDecodeCache:
    def test_stats_counters(self):
        stats = decoder.cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        word = _lui(1, 0x1000)
        decoder.decode(word)
        decoder.decode(word)
        decoder.decode(word)
        stats = decoder.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        assert stats["size"] == 1
        assert set(stats) == {"size", "limit", "hits", "misses", "clears"}

    def test_clear_on_full_keeps_memoising(self, monkeypatch):
        """When the cache fills it is cleared and refilled — later decodes
        must still be memoised instead of silently uncached forever."""
        monkeypatch.setattr(decoder, "_CACHE_LIMIT", 8)
        decoder.clear_cache()
        words = [_lui(rd, imm << 12) for rd in range(4) for imm in range(4)]
        assert len(words) == 16
        for word in words:
            decoder.decode(word)
        stats = decoder.cache_stats()
        assert stats["clears"] >= 1
        assert stats["size"] <= 8
        # The most recent insert survives the clear and now hits.
        before = decoder.cache_stats()["hits"]
        decoder.decode(words[-1])
        assert decoder.cache_stats()["hits"] == before + 1

    def test_decoded_instructions_are_shared(self):
        word = _jal(0, 0x800)
        assert decoder.decode(word) is decoder.decode(word)
