"""Functional engine behaviours: run control, WFI, limits, panics."""

import pytest

from repro import MRoutine, build_metal_machine, build_trap_machine
from repro.errors import (
    ExecutionLimitExceeded,
    GuestPanic,
    HaltedError,
)


class TestRunControl:
    def test_run_returns_halt_reason(self):
        m = build_trap_machine(with_caches=False)
        res = m.load_and_run("_start:\n    halt\n")
        assert res.stop_reason == "halt"
        assert res.halted

    def test_stop_pc(self):
        m = build_trap_machine(with_caches=False)
        prog = m.assemble("""
_start:
    li   a0, 1
target:
    li   a0, 2
    halt
""", base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        res = m.sim.run(stop_pc=prog.symbols["target"])
        assert res.stop_reason == "stop_pc"
        assert m.reg("a0") == 1  # stopped before the second li

    def test_limit_raises_by_default(self):
        m = build_trap_machine(with_caches=False)
        prog = m.assemble("_start:\nspin:\n    j spin\n")
        m.load(prog)
        m.core.pc = 0x1000
        with pytest.raises(ExecutionLimitExceeded):
            m.sim.run(max_instructions=100)

    def test_limit_soft_mode(self):
        m = build_trap_machine(with_caches=False)
        prog = m.assemble("_start:\nspin:\n    j spin\n", base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        res = m.sim.run(max_instructions=100, raise_on_limit=False)
        assert res.stop_reason == "limit"
        assert res.instructions == 100

    def test_step_after_halt_raises(self):
        m = build_trap_machine(with_caches=False)
        m.load_and_run("_start:\n    halt\n")
        with pytest.raises(HaltedError):
            m.sim.step()

    def test_cpi_property(self):
        m = build_trap_machine(with_caches=False)
        res = m.load_and_run("_start:\n    nop\n    nop\n    halt\n")
        assert res.cpi == res.cycles / res.instructions

    def test_stop_pc_ignored_in_metal_mode(self):
        # A Metal-mode pc numerically equal to stop_pc must not stop the run.
        r = MRoutine(name="r", entry=0, source="nop\n" * 8 + "mexit\n")
        m = build_metal_machine([r], with_caches=False)
        prog = m.assemble("_start:\n    menter MR_R\n    halt\n", base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        # MRAM offsets are tiny; pick one the routine will pass through
        res = m.sim.run(stop_pc=8, max_instructions=1000,
                        raise_on_limit=False)
        assert res.stop_reason == "halt"


class TestWfi:
    def test_wfi_without_controller_panics(self):
        from repro.cpu.core import CpuCore
        from repro.cpu.functional import FunctionalSimulator
        from repro.mem.bus import MemoryBus
        from repro.asm import assemble

        bus = MemoryBus()
        bus.attach_ram(0, 0x4000)
        core = CpuCore(bus=bus, irq=None)
        sim = FunctionalSimulator(core)
        prog = assemble("_start:\n    wfi\n    halt\n", base=0x100)
        prog.load_into(bus)
        core.pc = 0x100
        with pytest.raises(GuestPanic):
            sim.run(max_instructions=100)

    def test_wfi_gives_up_eventually(self):
        # irq controller exists but nothing ever fires
        m = build_trap_machine(with_caches=False)
        with pytest.raises(GuestPanic):
            m.load_and_run("_start:\n    wfi\n    halt\n",
                           max_instructions=10)

    def test_wfi_advances_device_time(self):
        m = build_trap_machine(with_caches=False)
        m.timer.compare = 1000
        m.timer.irq_enabled = True
        m.load_and_run("_start:\n    wfi\n    halt\n")
        # woke up at/after the timer compare point
        assert m.timer.count >= 1000
        assert m.core.halted


class TestPanics:
    def test_trap_without_vector_names_cause(self):
        m = build_trap_machine(with_caches=False)
        with pytest.raises(GuestPanic) as err:
            m.load_and_run("_start:\n    ecall\n")
        assert "mtvec" in str(err.value)

    def test_double_fault_names_routine(self):
        bad = MRoutine(name="crasher", entry=0, source="""
            li   t0, 0xE0000000
            mpld a0, 0(t0)       # bus error inside the mroutine
            mexit
        """)
        m = build_metal_machine([bad], with_caches=False)
        with pytest.raises(GuestPanic) as err:
            m.load_and_run("_start:\n    menter MR_CRASHER\n    halt\n")
        assert "crasher" in str(err.value)

    def test_decode_error_in_guest_becomes_trap(self):
        m = build_trap_machine(with_caches=False)
        m.load_and_run("""
_start:
    li   t0, handler
    csrrw zero, CSR_MTVEC, t0
    .word 0x0000707F
    j    done
handler:
    csrrs a0, CSR_MCAUSE, zero
    csrrs a1, CSR_MTVAL, zero
    halt
done:
""")
        assert m.reg("a0") == 1
        assert m.reg("a1") == 0x0000707F  # the offending word in mtval


class TestDeviceTicking:
    def test_timer_tracks_cycle_count(self):
        m = build_trap_machine(with_caches=False)
        m.load_and_run("_start:\n" + "    nop\n" * 50 + "    halt\n")
        assert m.timer.count == m.cycles

    def test_nic_arrivals_follow_simulated_time(self):
        m = build_trap_machine(with_caches=False)
        m.nic.schedule_packet(40, b"x")
        m.load_and_run("""
_start:
    li   t0, NIC_RX_STATUS
    lw   a0, 0(t0)        # likely before arrival
    li   t1, 200
spin:
    addi t1, t1, -1
    bnez t1, spin
    lw   a1, 0(t0)        # well after arrival
    halt
""")
        assert m.reg("a1") == 1
