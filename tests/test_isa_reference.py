"""The generated ISA reference must stay complete and in sync."""

import pathlib

from repro.isa.opcodes import SPECS
from repro.isa.reference import SEMANTICS, coverage_check, render_markdown


class TestReferenceCompleteness:
    def test_every_mnemonic_has_semantics(self):
        missing_sem, missing_grp = coverage_check()
        assert missing_sem == []
        assert missing_grp == []

    def test_no_stale_semantics(self):
        stale = sorted(set(SEMANTICS) - set(SPECS))
        assert stale == []

    def test_render_contains_every_mnemonic(self):
        text = render_markdown()
        for mnemonic in SPECS:
            assert f"`{mnemonic} " in text, mnemonic

    def test_metal_only_marked(self):
        text = render_markdown()
        for line in text.splitlines():
            if line.startswith("| `mexit "):
                assert "| Metal |" in line
            if line.startswith("| `menter "):
                assert "| any |" in line


class TestCheckedInCopy:
    def test_docs_isa_md_is_current(self):
        path = pathlib.Path(__file__).parent.parent / "docs" / "ISA.md"
        assert path.exists(), "regenerate: python -m repro.isa.reference > docs/ISA.md"
        assert path.read_text().strip() == render_markdown().strip(), (
            "docs/ISA.md is stale — regenerate with "
            "`python -m repro.isa.reference > docs/ISA.md`"
        )
