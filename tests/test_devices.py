"""Device model tests: console, timer, NIC, block device, interrupt ctl."""

import pytest

from repro.devices import BlockDevice, Console, InterruptController, Nic, Timer
from repro.devices.blockdev import (
    CMD_READ,
    CMD_WRITE,
    REG_CMD,
    REG_COMPLETED,
    REG_DMA_ADDR,
    REG_SECTOR,
    REG_STATUS,
    SECTOR_SIZE,
    STATUS_BUSY,
    STATUS_COMPLETE,
    STATUS_IDLE,
)
from repro.devices.console import (
    REG_RX_DATA,
    REG_RX_STATUS as CON_RX_STATUS,
    REG_TX,
)
from repro.devices.nic import (
    REG_DMA_ADDR as NIC_DMA,
    REG_IRQ_CTRL,
    REG_RX_LEN,
    REG_RX_POP,
    REG_RX_STATUS,
    REG_RX_TOTAL,
)
from repro.devices.timer import REG_COMPARE, REG_COUNT, REG_CTRL
from repro.errors import SimulatorError
from repro.mem import MemoryBus


class TestConsole:
    def test_tx_collects_output(self):
        con = Console(base=0)
        for ch in b"hi":
            con.write_reg(REG_TX, ch)
        assert con.text == "hi"

    def test_rx_feed_and_drain(self):
        con = Console(base=0)
        con.feed(b"ab")
        assert con.read_reg(CON_RX_STATUS) == 2
        assert con.read_reg(REG_RX_DATA) == ord("a")
        assert con.read_reg(REG_RX_DATA) == ord("b")
        assert con.read_reg(REG_RX_DATA) == 0  # empty -> 0

    def test_rx_irq(self):
        con = Console(base=0)
        con.feed(b"x")
        assert not con.irq_pending()      # irq disabled
        con.write_reg(0x0C, 1)
        assert con.irq_pending()
        con.read_reg(REG_RX_DATA)
        assert not con.irq_pending()      # drained


class TestTimer:
    def test_count_advances_with_ticks(self):
        t = Timer(base=0)
        t.tick(100)
        assert t.read_reg(REG_COUNT) == 100

    def test_compare_interrupt(self):
        t = Timer(base=0)
        t.write_reg(REG_COMPARE, 50)
        t.write_reg(REG_CTRL, 1)
        t.tick(49)
        assert not t.irq_pending()
        t.tick(1)
        assert t.irq_pending()

    def test_irq_disabled(self):
        t = Timer(base=0)
        t.write_reg(REG_COMPARE, 0)
        t.tick(10)
        assert not t.irq_pending()


class TestNic:
    def _nic_with_bus(self):
        bus = MemoryBus()
        bus.attach_ram(0, 0x1000)
        nic = Nic(base=0xF000_0000)
        nic.bus = bus
        return nic, bus

    def test_scheduled_arrival(self):
        nic, _ = self._nic_with_bus()
        nic.schedule_packet(100, b"pkt")
        nic.tick(50)
        assert nic.read_reg(REG_RX_STATUS) == 0
        nic.tick(50)
        assert nic.read_reg(REG_RX_STATUS) == 1
        assert nic.read_reg(REG_RX_LEN) == 3

    def test_pop_dma(self):
        nic, bus = self._nic_with_bus()
        nic.schedule_packet(0, b"abcd")
        nic.tick(1)
        nic.write_reg(NIC_DMA, 0x100)
        nic.write_reg(REG_RX_POP, 1)
        assert bus.read_bytes(0x100, 4) == b"abcd"
        assert nic.read_reg(REG_RX_TOTAL) == 1
        assert nic.read_reg(REG_RX_STATUS) == 0

    def test_irq_level(self):
        nic, _ = self._nic_with_bus()
        nic.schedule_packet(0, b"x")
        nic.tick(1)
        assert not nic.irq_pending()
        nic.write_reg(REG_IRQ_CTRL, 1)
        assert nic.irq_pending()
        nic.write_reg(REG_RX_POP, 1)
        assert not nic.irq_pending()

    def test_latency_accounting(self):
        nic, _ = self._nic_with_bus()
        nic.schedule_packet(10, b"x")
        nic.tick(60)
        nic.write_reg(REG_RX_POP, 1)
        assert nic.latencies == [(10, 60)]

    def test_fifo_order(self):
        nic, bus = self._nic_with_bus()
        nic.schedule_packet(5, b"B")
        nic.schedule_packet(1, b"A")
        nic.tick(10)
        nic.write_reg(NIC_DMA, 0x200)
        nic.write_reg(REG_RX_POP, 1)
        assert bus.read_u8(0x200) == ord("A")


class TestBlockDevice:
    def _blk_with_bus(self, latency=10):
        bus = MemoryBus()
        bus.attach_ram(0, 0x1000)
        blk = BlockDevice(base=0xF000_0000, latency_cycles=latency)
        blk.bus = bus
        return blk, bus

    def test_read_completes_after_latency(self):
        blk, bus = self._blk_with_bus(latency=10)
        blk.preload(3, b"sector3!")
        blk.write_reg(REG_SECTOR, 3)
        blk.write_reg(REG_DMA_ADDR, 0x400)
        blk.write_reg(REG_CMD, CMD_READ)
        assert blk.read_reg(REG_STATUS) == STATUS_BUSY
        blk.tick(9)
        assert blk.read_reg(REG_STATUS) == STATUS_BUSY
        blk.tick(1)
        assert blk.read_reg(REG_STATUS) == STATUS_COMPLETE
        assert bus.read_bytes(0x400, 8) == b"sector3!"

    def test_write_roundtrip(self):
        blk, bus = self._blk_with_bus(latency=1)
        bus.write_bytes(0x200, b"payload!".ljust(SECTOR_SIZE, b"\0"))
        blk.write_reg(REG_SECTOR, 9)
        blk.write_reg(REG_DMA_ADDR, 0x200)
        blk.write_reg(REG_CMD, CMD_WRITE)
        blk.tick(1)
        assert blk.sectors[9][:8] == b"payload!"
        assert blk.read_reg(REG_COMPLETED) == 1

    def test_ack_clears_complete(self):
        blk, _ = self._blk_with_bus(latency=1)
        blk.write_reg(REG_CMD, CMD_READ)
        blk.tick(1)
        blk.write_reg(REG_STATUS, 0)
        assert blk.read_reg(REG_STATUS) == STATUS_IDLE

    def test_busy_rejects_new_command(self):
        blk, _ = self._blk_with_bus(latency=100)
        blk.write_reg(REG_CMD, CMD_READ)
        blk.write_reg(REG_CMD, CMD_READ)  # ignored while busy
        blk.tick(100)
        assert blk.read_reg(REG_COMPLETED) == 1

    def test_irq(self):
        blk, _ = self._blk_with_bus(latency=1)
        blk.write_reg(0x10, 1)
        blk.write_reg(REG_CMD, CMD_READ)
        blk.tick(1)
        assert blk.irq_pending()
        blk.write_reg(REG_STATUS, 0)
        assert not blk.irq_pending()


class TestInterruptController:
    def test_level_source(self):
        irq = InterruptController()
        state = {"on": False}
        irq.wire(3, lambda: state["on"])
        assert irq.highest_pending() is None
        state["on"] = True
        assert irq.highest_pending() == 3

    def test_priority_is_lowest_line(self):
        irq = InterruptController()
        irq.wire(5, lambda: True)
        irq.wire(2, lambda: True)
        assert irq.highest_pending() == 2

    def test_enable_mask(self):
        irq = InterruptController()
        irq.wire(1, lambda: True)
        irq.set_enabled(0)
        assert irq.highest_pending() is None
        irq.set_enabled(1 << 1)
        assert irq.highest_pending() == 1

    def test_latched_raise_and_ack(self):
        irq = InterruptController()
        irq.raise_line(4)
        assert irq.highest_pending() == 4
        irq.acknowledge(4)
        assert irq.highest_pending() is None

    def test_double_wire_rejected(self):
        irq = InterruptController()
        irq.wire(0, lambda: False)
        with pytest.raises(SimulatorError):
            irq.wire(0, lambda: False)

    def test_line_range(self):
        irq = InterruptController()
        with pytest.raises(SimulatorError):
            irq.wire(32, lambda: False)


class TestNicTransactionalPop:
    """RX_POP must validate the DMA copy before dequeuing: a bad
    DMA_ADDR loses nothing and latches RX_FAULT instead of raising a
    host bus error out of the MMIO write (regression: the pre-fix pop
    dequeued first, so the packet was lost AND the exception escaped)."""

    def _nic_with_bus(self):
        bus = MemoryBus()
        bus.attach_ram(0, 0x1000)
        nic = Nic(base=0xF000_0000)
        nic.bus = bus
        return nic, bus

    def test_bad_dma_leaves_queue_intact_and_latches_fault(self):
        from repro.devices.nic import FAULT_DMA, FAULT_NONE, REG_RX_FAULT

        nic, bus = self._nic_with_bus()
        nic.schedule_packet(0, b"precious")
        nic.tick(1)
        nic.write_reg(NIC_DMA, 0xDEAD_F000)      # unmapped target
        nic.write_reg(REG_RX_POP, 1)             # must not raise
        assert nic.read_reg(REG_RX_STATUS) == 1  # packet still queued
        assert nic.read_reg(REG_RX_TOTAL) == 0   # nothing delivered
        assert nic.read_reg(REG_RX_FAULT) == FAULT_DMA
        assert nic.latencies == []

        # Retry with a good address: the same packet arrives whole.
        nic.write_reg(NIC_DMA, 0x100)
        nic.write_reg(REG_RX_POP, 1)
        assert bus.read_bytes(0x100, 8) == b"precious"
        assert nic.read_reg(REG_RX_STATUS) == 0
        assert nic.read_reg(REG_RX_TOTAL) == 1
        # the fault stays latched (readable post-mortem) until cleared
        assert nic.read_reg(REG_RX_FAULT) == FAULT_DMA
        nic.write_reg(REG_RX_FAULT, 0)
        assert nic.read_reg(REG_RX_FAULT) == FAULT_NONE

    def test_partially_out_of_range_dma_is_all_or_nothing(self):
        nic, bus = self._nic_with_bus()
        nic.schedule_packet(0, b"12345678")
        nic.tick(1)
        nic.write_reg(NIC_DMA, 0xFFC)            # last word of RAM: 4 of 8 fit
        nic.write_reg(REG_RX_POP, 1)
        assert nic.read_reg(REG_RX_STATUS) == 1  # transactional: kept
        assert bus.read_bytes(0xFFC, 4) == b"\0\0\0\0"  # nothing written


class TestNicFaultInjection:
    def _nic(self):
        nic = Nic(base=0xF000_0000)
        return nic

    def test_drop_duplicate_corrupt(self):
        nic = self._nic()
        nic.schedule_packet(0, b"aa")
        nic.schedule_packet(0, b"bb")
        nic.tick(1)
        assert nic.inject_rx_drop()
        assert nic.queued == 1
        assert nic.inject_rx_duplicate()
        assert nic.queued == 2
        assert nic.inject_rx_corrupt(0, 0xFF)
        assert nic.faults_injected == {"drop": 1, "duplicate": 1, "corrupt": 1}

    def test_inject_on_empty_queue_reports_false(self):
        nic = self._nic()
        assert not nic.inject_rx_drop()
        assert not nic.inject_rx_duplicate()
        assert not nic.inject_rx_corrupt(0, 1)


class TestBlockDeviceFaults:
    def _blk_with_bus(self, latency=10):
        bus = MemoryBus()
        bus.attach_ram(0, 0x1000)
        blk = BlockDevice(base=0xF000_0000, latency_cycles=latency)
        blk.bus = bus
        return blk, bus

    def test_injected_error_completes_with_status_error_no_dma(self):
        from repro.devices.blockdev import STATUS_ERROR

        blk, bus = self._blk_with_bus(latency=5)
        blk.preload(1, b"should-not-arrive")
        blk.write_reg(REG_SECTOR, 1)
        blk.write_reg(REG_DMA_ADDR, 0x300)
        blk.write_reg(0x10, 1)                    # IRQ_CTRL
        blk.inject_error()
        blk.write_reg(REG_CMD, CMD_READ)
        blk.tick(5)
        assert blk.read_reg(REG_STATUS) == STATUS_ERROR
        assert bus.read_bytes(0x300, 8) == b"\0" * 8   # no DMA happened
        assert blk.errors == 1
        assert blk.irq_pending()                  # error raises the line too
        blk.write_reg(REG_STATUS, 0)              # ack clears it
        assert blk.read_reg(REG_STATUS) == STATUS_IDLE
        assert not blk.irq_pending()
        # one-shot: the next request succeeds
        blk.write_reg(REG_CMD, CMD_READ)
        blk.tick(5)
        assert blk.read_reg(REG_STATUS) == STATUS_COMPLETE

    def test_injected_timeout_hangs_until_cleared(self):
        blk, _ = self._blk_with_bus(latency=5)
        blk.inject_timeout()
        blk.write_reg(REG_CMD, CMD_READ)
        blk.tick(10_000)
        assert blk.read_reg(REG_STATUS) == STATUS_BUSY   # frozen
        blk.clear_faults()
        blk.tick(5)
        assert blk.read_reg(REG_STATUS) == STATUS_COMPLETE


class TestInterruptControllerFaults:
    def test_spurious_is_latched_until_ack(self):
        irq = InterruptController()
        irq.inject_spurious(7)
        assert irq.highest_pending() == 7
        irq.acknowledge(7)
        assert irq.highest_pending() is None

    def test_storm_survives_budgeted_acks(self):
        irq = InterruptController()
        irq.inject_storm(4, 2)
        assert irq.highest_pending() == 4
        irq.acknowledge(4)
        assert irq.highest_pending() == 4        # 1 re-assertion left
        irq.acknowledge(4)
        assert irq.highest_pending() == 4        # budget spent on this ack
        irq.acknowledge(4)
        assert irq.highest_pending() is None     # storm over
