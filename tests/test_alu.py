"""ALU semantics: unit cases plus property tests against Python ints."""

from hypothesis import given, strategies as st

from repro.cpu import alu

u32s = st.integers(0, 0xFFFFFFFF)


def signed(v):
    return v - (1 << 32) if v & 0x80000000 else v


class TestAddSub:
    def test_add_wraps(self):
        assert alu.add(0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert alu.sub(0, 1) == 0xFFFFFFFF

    @given(u32s, u32s)
    def test_add_matches_python(self, a, b):
        assert alu.add(a, b) == (a + b) & 0xFFFFFFFF

    @given(u32s, u32s)
    def test_sub_matches_python(self, a, b):
        assert alu.sub(a, b) == (a - b) & 0xFFFFFFFF


class TestShifts:
    def test_sll_uses_low5_bits(self):
        assert alu.sll(1, 33) == 2

    def test_srl_logical(self):
        assert alu.srl(0x80000000, 1) == 0x40000000

    def test_sra_arithmetic(self):
        assert alu.sra(0x80000000, 1) == 0xC0000000
        assert alu.sra(0x40000000, 1) == 0x20000000

    @given(u32s, st.integers(0, 31))
    def test_srl_matches_python(self, a, s):
        assert alu.srl(a, s) == a >> s

    @given(u32s, st.integers(0, 31))
    def test_sra_matches_python(self, a, s):
        assert alu.sra(a, s) == (signed(a) >> s) & 0xFFFFFFFF


class TestCompare:
    def test_slt_signed(self):
        assert alu.slt(0xFFFFFFFF, 0) == 1   # -1 < 0
        assert alu.slt(0, 0xFFFFFFFF) == 0

    def test_sltu_unsigned(self):
        assert alu.sltu(0xFFFFFFFF, 0) == 0
        assert alu.sltu(0, 0xFFFFFFFF) == 1

    @given(u32s, u32s)
    def test_branch_ops_consistent(self, a, b):
        assert alu.BRANCH_OPS["beq"](a, b) == (a == b)
        assert alu.BRANCH_OPS["bne"](a, b) == (a != b)
        assert alu.BRANCH_OPS["blt"](a, b) == (signed(a) < signed(b))
        assert alu.BRANCH_OPS["bgeu"](a, b) == (a >= b)


class TestMul:
    def test_mul_low(self):
        assert alu.mul(0x10000, 0x10000) == 0  # low 32 bits

    def test_mulh_signed(self):
        assert alu.mulh(0xFFFFFFFF, 0xFFFFFFFF) == 0  # (-1)*(-1)=1, high=0

    def test_mulhu_unsigned(self):
        assert alu.mulhu(0xFFFFFFFF, 0xFFFFFFFF) == 0xFFFFFFFE

    def test_mulhsu_mixed(self):
        # -1 * 0xFFFFFFFF = -0xFFFFFFFF -> high word 0xFFFFFFFF
        assert alu.mulhsu(0xFFFFFFFF, 0xFFFFFFFF) == 0xFFFFFFFF

    @given(u32s, u32s)
    def test_mul_matches_python(self, a, b):
        assert alu.mul(a, b) == (signed(a) * signed(b)) & 0xFFFFFFFF

    @given(u32s, u32s)
    def test_mulhu_matches_python(self, a, b):
        assert alu.mulhu(a, b) == (a * b) >> 32


class TestDivRem:
    def test_div_by_zero_is_minus_one(self):
        assert alu.div(42, 0) == 0xFFFFFFFF
        assert alu.divu(42, 0) == 0xFFFFFFFF

    def test_rem_by_zero_is_dividend(self):
        assert alu.rem(42, 0) == 42
        assert alu.remu(42, 0) == 42

    def test_signed_overflow(self):
        int_min = 0x80000000
        assert alu.div(int_min, 0xFFFFFFFF) == int_min  # wraps
        assert alu.rem(int_min, 0xFFFFFFFF) == 0

    def test_truncating_division(self):
        # RISC-V divides toward zero: -7 / 2 == -3, rem -1
        assert signed(alu.div(alu.sub(0, 7), 2)) == -3
        assert signed(alu.rem(alu.sub(0, 7), 2)) == -1

    @given(u32s, st.integers(1, 0xFFFFFFFF))
    def test_divu_matches_python(self, a, b):
        assert alu.divu(a, b) == a // b
        assert alu.remu(a, b) == a % b

    @given(u32s, u32s)
    def test_div_rem_identity(self, a, b):
        """a == div(a,b)*b + rem(a,b) (mod 2^32), including edge cases."""
        q = alu.div(a, b)
        r = alu.rem(a, b)
        if b == 0:
            assert q == 0xFFFFFFFF and r == a
        else:
            assert (signed(q) * signed(b) + signed(r)) & 0xFFFFFFFF == a
