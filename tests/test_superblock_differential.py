"""Differential fuzzing of superblock chaining.

Random guest programs (ALU ops, branches, jumps, loads/stores,
``menter``/``mexit`` round-trips into mroutines, and self-modifying
stores) run in lockstep on four functional machines — tcache off
entirely, tcache + superblock chaining on, tcache + chaining with
the MPROF trace sink attached (which bounds chained dispatches at the
profiling chain quantum), and tcache + chaining with the MJIT tier-2
compiler on at threshold 1 (every dispatched block is compiled to
specialized Python on first execution, including blocks whose code the
program later rewrites in place) — and every architecturally visible
piece of state is compared after every chunk of retired instructions.
Any divergence means the host fast path (the chainer, the profiler or
the JIT) leaked into guest-visible behaviour.

Seeds are deterministic and appear both in the test id and in every
assertion message, so a failure is reproducible with e.g.::

    PYTHONPATH=src python -m pytest "tests/test_superblock_differential.py::test_differential[seed17]"

The number of seeded cases defaults to 200 and can be lowered for smoke
runs with ``--seeds=25`` (see ``tests/conftest.py``).
"""

from __future__ import annotations

import random

from repro import MRoutine, build_metal_machine
from repro.asm import assemble

CODE_BASE = 0x1000
DATA_BASE = 0x40000          # scratch data region, far from the code pages
DATA_WORDS = 64
RAM_BYTES = 512 * 1024
CHUNK = 97                   # prime: chunk boundaries land mid-block/mid-chain
TOTAL_LIMIT = 40_000         # hard safety net per seed

#: General registers the generator may clobber.  Reserved: s0 (loop
#: budget), s1 (data base), t0 (jalr targets), t4 (SMC addresses).
REG_POOL = ("a0", "a1", "a2", "a3", "a4", "a5",
            "t1", "t2", "t3", "s2", "s3", "s4", "s5")

ALU_IMM = ("addi", "xori", "ori", "andi", "slti", "sltiu")
ALU_SHIFT = ("slli", "srli", "srai")
ALU_REG = ("add", "sub", "xor", "or", "and", "sll", "srl", "sra",
           "slt", "sltu", "mul", "mulhu")
BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
LOADS = ("lw", "lh", "lhu", "lb", "lbu")
STORES = ("sw", "sh", "sb")

#: Position-independent single instructions used as SMC patch payloads.
PATCH_SOURCES = (
    "addi a0, a0, 1",
    "addi a1, a1, 3",
    "xori a2, a2, 0x55",
    "andi a3, a3, 0xF0",
    "add  a4, a4, a1",
    "nop",
)


def _word_of(source: str) -> int:
    """Encode one position-independent instruction to its 32-bit word."""
    return assemble(source, base=0).words()[0]


def _routines():
    """Fresh mroutine declarations (the loader mutates them in place).

    ``spice`` exercises MReg traffic and MRAM data loads/stores;
    ``mloop`` has an internal backward branch so MRAM-namespace blocks
    get chained too.
    """
    spice = MRoutine(name="spice", entry=1, data_words=4, mregs=(10, 11),
                     source="""
        rmr  t0, m10
        add  t0, t0, a0
        wmr  m10, t0
        mst  t0, SPICE_DATA+0(zero)
        mld  t0, SPICE_DATA+0(zero)
        wmr  m11, t0
        xor  a0, a0, t0
        mexit
    """)
    mloop = MRoutine(name="mloop", entry=2, source="""
        andi t0, a1, 7
        addi t0, t0, 2
    spin:
        addi a2, a2, 1
        addi t0, t0, -1
        bnez t0, spin
        mexit
    """)
    return [spice, mloop]


def _gen_program(rng: random.Random) -> str:
    """A random, always-terminating guest program.

    Shape: a chain of chunks executed mostly front to back.  Forward
    control flow (jumps, taken/untaken branches, ``jalr`` trampolines)
    is unrestricted; backward branches are guarded by the s0 budget
    counter, which strictly decreases on every backward traversal, so
    the program provably reaches ``done``.
    """
    n_chunks = rng.randint(6, 12)
    lines = [
        "_start:",
        f"    li   s1, {DATA_BASE}",
        f"    li   s0, {rng.randint(24, 60)}",
    ]

    def reg():
        return rng.choice(REG_POOL)

    patch_slots = []

    for k in range(n_chunks):
        lines.append(f"chunk_{k}:")
        for _ in range(rng.randint(3, 10)):
            roll = rng.random()
            if roll < 0.30:
                op = rng.choice(ALU_IMM)
                lines.append(f"    {op} {reg()}, {reg()}, "
                             f"{rng.randint(-2048, 2047)}")
            elif roll < 0.40:
                op = rng.choice(ALU_SHIFT)
                lines.append(f"    {op} {reg()}, {reg()}, {rng.randint(0, 31)}")
            elif roll < 0.58:
                op = rng.choice(ALU_REG)
                lines.append(f"    {op} {reg()}, {reg()}, {reg()}")
            elif roll < 0.64:
                if rng.random() < 0.5:
                    lines.append(f"    lui {reg()}, {rng.randint(0, 0xFFFFF)}")
                else:
                    lines.append(f"    auipc {reg()}, 0")
            elif roll < 0.76:
                op = rng.choice(LOADS)
                off = rng.randrange(0, 4 * DATA_WORDS,
                                    {"lw": 4, "lh": 2, "lhu": 2}.get(op, 1))
                lines.append(f"    {op} {reg()}, {off}(s1)")
            elif roll < 0.88:
                op = rng.choice(STORES)
                off = rng.randrange(0, 4 * DATA_WORDS,
                                    {"sw": 4, "sh": 2}.get(op, 1))
                lines.append(f"    {op} {reg()}, {off}(s1)")
            elif roll < 0.94:
                lines.append(f"    menter MR_{rng.choice(['SPICE', 'MLOOP'])}")
            else:
                # A patchable slot: executes as written until some later
                # (or earlier!) iteration's store rewrites it in place.
                slot = len(patch_slots)
                patch_slots.append(slot)
                lines.append(f"patch_{slot}:")
                lines.append(f"    addi a5, a5, {rng.randint(0, 15)}")

        # Self-modifying store against a random already-emitted slot.
        if patch_slots and rng.random() < 0.35:
            slot = rng.choice(patch_slots)
            word = _word_of(rng.choice(PATCH_SOURCES))
            lines.append(f"    li   t4, patch_{slot}")
            lines.append(f"    li   t0, {word}")
            lines.append("    sw   t0, 0(t4)")

        # Chunk terminator.
        roll = rng.random()
        nxt = (f"chunk_{rng.randint(k + 1, n_chunks - 1)}"
               if k + 1 < n_chunks else "done")
        if roll < 0.25:
            pass                                     # fall through
        elif roll < 0.45:
            lines.append(f"    j    {nxt}")           # unconditional forward
        elif roll < 0.65 and k > 0:
            # Budget-guarded backward branch: the loop that chaining
            # loves, bounded by s0.
            back = f"chunk_{rng.randint(0, k)}"
            lines.append("    addi s0, s0, -1")
            lines.append(f"    blt  zero, s0, {back}")
        elif roll < 0.85:
            op = rng.choice(BRANCHES)
            lines.append(f"    {op} {reg()}, {reg()}, {nxt}")
        else:
            lines.append(f"    li   t0, {nxt}")       # monomorphic jalr
            lines.append("    jalr zero, 0(t0)")

    lines.append("done:")
    lines.append("    halt")
    return "\n".join(lines) + "\n"


def _build(tcache: bool, jit: bool = False):
    machine = build_metal_machine(
        _routines(), engine="functional", with_caches=False,
        ram_bytes=RAM_BYTES, tcache=tcache,
    )
    if jit:
        machine.set_tcache_jit(True)
        # Compile on first dispatch so every seed exercises tier 2.
        machine.sim.tcache.jit_threshold = 1
    return machine


def _state(machine) -> dict:
    core = machine.core
    return {
        "regs": list(core.regs),
        "pc": core.pc,
        "instret": core.instret,
        "cycles": machine.cycles,
        "halted": core.halted,
        "waiting": core.waiting,
        "in_metal": core.in_metal,
        "mregs": core.metal.mregs.snapshot(),
        "mram_data": bytes(core.metal.mram.data),
        "data": machine.read_bytes(DATA_BASE, 4 * DATA_WORDS),
    }


def _assert_same(seed, step, ref, got, code_len, m_ref, m_got,
                 label: str = "chained"):
    ref_code = m_ref.read_bytes(CODE_BASE, code_len)
    got_code = m_got.read_bytes(CODE_BASE, code_len)
    assert ref_code == got_code, (
        f"seed {seed} step {step}: code bytes diverge ({label})"
    )
    for key in ref:
        assert ref[key] == got[key], (
            f"seed {seed} step {step}: {key} diverges "
            f"(tcache-off={ref[key]!r}, {label}={got[key]!r})"
        )


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        n = metafunc.config.getoption("--seeds")
        metafunc.parametrize("seed", range(n), ids=[f"seed{i}" for i in range(n)])
    if "snap_seed" in metafunc.fixturenames:
        metafunc.parametrize("snap_seed", range(SNAPSHOT_SEEDS),
                             ids=[f"snap{i}" for i in range(SNAPSHOT_SEEDS)])


def test_differential(seed):
    rng = random.Random(0xC0DE + seed)
    source = _gen_program(rng)

    m_ref = _build(tcache=False)       # interpreter, no fast path at all
    m_got = _build(tcache=True)        # predecoded blocks + chaining
    m_prof = _build(tcache=True)       # chaining + MPROF sink attached
    m_jit = _build(tcache=True, jit=True)   # chaining + MJIT tier 2
    m_prof.set_profiling(True)
    assert m_got.sim.tcache.chain, "chaining should default on"

    programs = []
    for machine in (m_ref, m_got, m_prof, m_jit):
        program = machine.assemble(source, base=CODE_BASE)
        machine.load(program)
        machine.core.pc = CODE_BASE
        programs.append(program)
    code_len = 4 * len(programs[0].words())

    step = 0
    retired = 0
    while retired < TOTAL_LIMIT:
        m_ref.run(max_instructions=CHUNK, raise_on_limit=False)
        m_got.run(max_instructions=CHUNK, raise_on_limit=False)
        m_prof.run(max_instructions=CHUNK, raise_on_limit=False)
        m_jit.run(max_instructions=CHUNK, raise_on_limit=False)
        step += 1
        retired += CHUNK
        ref, got = _state(m_ref), _state(m_got)
        _assert_same(seed, step, ref, got, code_len, m_ref, m_got)
        _assert_same(seed, step, ref, _state(m_prof), code_len,
                     m_ref, m_prof, label="profiled")
        _assert_same(seed, step, ref, _state(m_jit), code_len,
                     m_ref, m_jit, label="jit")
        if ref["halted"]:
            break

    assert m_ref.core.halted, (
        f"seed {seed}: program failed to halt within {TOTAL_LIMIT} "
        f"instructions (generator bug)"
    )
    # The fast path must actually have been on the hook: the chained
    # machine should have dispatched through the tcache, and the
    # profiled machine's sink should have recorded its dispatches.
    stats = m_got.perf.tcache
    assert stats.dispatches > 0, f"seed {seed}: tcache never dispatched"
    assert m_prof.profiler.total_traces > 0, (
        f"seed {seed}: profiler recorded no traces"
    )
    assert m_jit.perf.tcache.dispatches > 0, (
        f"seed {seed}: jit machine never dispatched"
    )


SNAPSHOT_SEEDS = 8


def test_differential_snapshot_midrun(snap_seed):
    """Snapshot all four machines mid-run, continue to halt in
    lockstep, restore, and replay: the second continuation must retrace
    the first bit-for-bit.  This pins two properties at once — the
    snapshot captures *every* guest-visible bit (missing state shows up
    as a pass-1 vs pass-2 divergence), and the host fast paths carry no
    guest-visible residue across a restore (the tcache still holds
    pass-1 superblocks, the profiler keeps pass-1 traces, the JIT keeps
    pass-1 compiled functions; none may leak into the replayed
    architectural state)."""
    from repro.machine.snapshot import restore_snapshot, take_snapshot

    rng = random.Random(0x5AFE + snap_seed)
    source = _gen_program(rng)

    # Probe the program's total length on a throwaway interpreter so
    # the snapshot lands squarely mid-run, whatever the generator made.
    probe = _build(tcache=False)
    probe.load(probe.assemble(source, base=CODE_BASE))
    probe.core.pc = CODE_BASE
    probe.run(max_instructions=TOTAL_LIMIT, raise_on_limit=False)
    assert probe.core.halted, f"snap seed {snap_seed}: probe never halted"
    snapshot_mid = max(1, probe.core.instret // 2)

    machines = (_build(tcache=False), _build(tcache=True),
                _build(tcache=True), _build(tcache=True, jit=True))
    m_ref, m_got, m_prof, m_jit = machines
    m_prof.set_profiling(True)
    for machine in machines:
        program = machine.assemble(source, base=CODE_BASE)
        machine.load(program)
        machine.core.pc = CODE_BASE
    code_len = 4 * len(program.words())

    def check(step):
        ref = _state(m_ref)
        _assert_same(snap_seed, step, ref, _state(m_got), code_len,
                     m_ref, m_got)
        _assert_same(snap_seed, step, ref, _state(m_prof), code_len,
                     m_ref, m_prof, label="profiled")
        _assert_same(snap_seed, step, ref, _state(m_jit), code_len,
                     m_ref, m_jit, label="jit")
        return ref

    def continue_to_halt():
        retired = 0
        while retired < TOTAL_LIMIT:
            for machine in machines:
                machine.run(max_instructions=CHUNK, raise_on_limit=False)
            retired += CHUNK
            ref = check(f"+{retired}")
            if ref["halted"]:
                return ref
        raise AssertionError(
            f"snap seed {snap_seed}: program failed to halt")

    for machine in machines:
        machine.run(max_instructions=snapshot_mid, raise_on_limit=False)
    mid = check("mid")
    assert not mid["halted"], (
        f"snap seed {snap_seed}: halted before the snapshot point")
    snaps = [take_snapshot(machine) for machine in machines]

    first = continue_to_halt()

    for machine, snap in zip(machines, snaps):
        restore_snapshot(machine, snap)
    replay_mid = check("restored")
    assert not replay_mid["halted"]
    second = continue_to_halt()

    # The replay matches the first continuation on every architectural
    # field.  ``cycles`` is excluded by design: the cycle counter is
    # engine-owned timing state, not snapshot-restorable guest state
    # (instret *is* restored, and is compared).
    for key in first:
        if key == "cycles":
            continue
        assert first[key] == second[key], (
            f"snap seed {snap_seed}: replay diverges on {key} "
            f"(first={first[key]!r}, replay={second[key]!r})"
        )


def test_chaining_engages_on_loops():
    """Structural check: a loopy program actually follows chain links
    (guards the fuzz harness against silently testing chaining-off)."""
    m = _build(tcache=True)
    m.load_and_run("""
_start:
    li   s0, 2000
loop:
    addi a0, a0, 1
    addi s0, s0, -1
    j    hop
hop:
    blt  zero, s0, loop
    halt
""", base=CODE_BASE)
    stats = m.perf.tcache
    assert m.reg("a0") == 2000
    assert stats.chain_links >= 2
    assert stats.chain_hits > 1000
    assert stats.chain_longest > 100


def test_polymorphic_branch_stays_chained():
    """A branch whose target flips every iteration keeps *both*
    successors linked in the LRU target map: secondary-entry hits
    accumulate while chain breaks stay O(1).  Under the monomorphic
    single-slot chainer this program broke and relinked its chain on
    every flip (≈1 break per iteration)."""
    m = _build(tcache=True)
    m.load_and_run("""
_start:
    li   s0, 2000
loop:
    andi t1, s0, 1
    beqz t1, even
odd:
    addi a0, a0, 1
    j    next
even:
    addi a1, a1, 1
next:
    addi s0, s0, -1
    bnez s0, loop
    halt
""", base=CODE_BASE)
    assert m.reg("a0") == 1000        # odd iterations (s0 = 1999, 1997, ...)
    assert m.reg("a1") == 1000
    stats = m.perf.tcache
    assert stats.chain_poly_hits > 1500, (
        f"LRU target map not engaging: {stats.chain_poly_hits} poly hits"
    )
    assert stats.chain_breaks <= 8, (
        f"alternating branch still breaking chains: {stats.chain_breaks}"
    )
    # Polymorphic hits are a subset of chain hits.
    assert stats.chain_hits >= stats.chain_poly_hits


def test_polymorphic_jalr_three_targets():
    """An indirect jump rotating through three targets fits the
    LINKS_MAX=4 target map: all three successors stay linked."""
    m = _build(tcache=True)
    m.load_and_run("""
_start:
    li   s0, 1500
loop:
    # t0 = s0 % 3 via repeated subtraction on the low bits (cheap mod):
    andi t1, s0, 3
    li   t0, arm0
    beqz t1, go
    li   t0, arm1
    addi t1, t1, -1
    beqz t1, go
    li   t0, arm2
go:
    jalr zero, 0(t0)
arm0:
    addi a0, a0, 1
    j    next
arm1:
    addi a1, a1, 1
    j    next
arm2:
    addi a2, a2, 1
next:
    addi s0, s0, -1
    bnez s0, loop
    halt
""", base=CODE_BASE)
    assert m.reg("a0") + m.reg("a1") + m.reg("a2") == 1500
    stats = m.perf.tcache
    assert stats.chain_poly_hits > 1000, (
        f"three-target jalr not staying chained: "
        f"{stats.chain_poly_hits} poly hits, {stats.chain_breaks} breaks"
    )
