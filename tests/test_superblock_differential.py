"""Differential fuzzing of superblock chaining.

Random guest programs (ALU ops, branches, jumps, loads/stores,
``menter``/``mexit`` round-trips into mroutines, and self-modifying
stores) run in lockstep on four functional machines — tcache off
entirely, tcache + superblock chaining on, tcache + chaining with
the MPROF trace sink attached (which bounds chained dispatches at the
profiling chain quantum), and tcache + chaining with the MJIT tier-2
compiler on at threshold 1 (every dispatched block is compiled to
specialized Python on first execution, including blocks whose code the
program later rewrites in place) — and every architecturally visible
piece of state is compared after every chunk of retired instructions.
Any divergence means the host fast path (the chainer, the profiler or
the JIT) leaked into guest-visible behaviour.

Seeds are deterministic and appear both in the test id and in every
assertion message, so a failure is reproducible with e.g.::

    PYTHONPATH=src python -m pytest "tests/test_superblock_differential.py::test_differential[seed17]"

The number of seeded cases defaults to 200 and can be lowered for smoke
runs with ``--seeds=25`` (see ``tests/conftest.py``).
"""

from __future__ import annotations

import random

from repro import build_metal_machine

# The program generator lives in repro.conformance.generator (shared
# with the MCONF campaign runner); with the default GenConfig it is
# seed-for-seed identical to the generator that used to live here —
# tests/test_conformance.py pins golden digests for seeds 0-4.
from repro.conformance.generator import (
    CHUNK, CODE_BASE, DATA_BASE, DATA_WORDS, RAM_BYTES, TOTAL_LIMIT,
    gen_program, routines,
)

_routines = routines
_gen_program = gen_program


def _build(tcache: bool, jit: bool = False):
    machine = build_metal_machine(
        _routines(), engine="functional", with_caches=False,
        ram_bytes=RAM_BYTES, tcache=tcache,
    )
    if jit:
        machine.set_tcache_jit(True)
        # Compile on first dispatch so every seed exercises tier 2.
        machine.sim.tcache.jit_threshold = 1
    return machine


def _state(machine) -> dict:
    core = machine.core
    return {
        "regs": list(core.regs),
        "pc": core.pc,
        "instret": core.instret,
        "cycles": machine.cycles,
        "halted": core.halted,
        "waiting": core.waiting,
        "in_metal": core.in_metal,
        "mregs": core.metal.mregs.snapshot(),
        "mram_data": bytes(core.metal.mram.data),
        "data": machine.read_bytes(DATA_BASE, 4 * DATA_WORDS),
    }


def _assert_same(seed, step, ref, got, code_len, m_ref, m_got,
                 label: str = "chained"):
    ref_code = m_ref.read_bytes(CODE_BASE, code_len)
    got_code = m_got.read_bytes(CODE_BASE, code_len)
    assert ref_code == got_code, (
        f"seed {seed} step {step}: code bytes diverge ({label})"
    )
    for key in ref:
        assert ref[key] == got[key], (
            f"seed {seed} step {step}: {key} diverges "
            f"(tcache-off={ref[key]!r}, {label}={got[key]!r})"
        )


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        n = metafunc.config.getoption("--seeds")
        metafunc.parametrize("seed", range(n), ids=[f"seed{i}" for i in range(n)])
    if "snap_seed" in metafunc.fixturenames:
        metafunc.parametrize("snap_seed", range(SNAPSHOT_SEEDS),
                             ids=[f"snap{i}" for i in range(SNAPSHOT_SEEDS)])


def test_differential(seed):
    rng = random.Random(0xC0DE + seed)
    source = _gen_program(rng)

    m_ref = _build(tcache=False)       # interpreter, no fast path at all
    m_got = _build(tcache=True)        # predecoded blocks + chaining
    m_prof = _build(tcache=True)       # chaining + MPROF sink attached
    m_jit = _build(tcache=True, jit=True)   # chaining + MJIT tier 2
    m_prof.set_profiling(True)
    assert m_got.sim.tcache.chain, "chaining should default on"

    programs = []
    for machine in (m_ref, m_got, m_prof, m_jit):
        program = machine.assemble(source, base=CODE_BASE)
        machine.load(program)
        machine.core.pc = CODE_BASE
        programs.append(program)
    code_len = 4 * len(programs[0].words())

    step = 0
    retired = 0
    while retired < TOTAL_LIMIT:
        m_ref.run(max_instructions=CHUNK, raise_on_limit=False)
        m_got.run(max_instructions=CHUNK, raise_on_limit=False)
        m_prof.run(max_instructions=CHUNK, raise_on_limit=False)
        m_jit.run(max_instructions=CHUNK, raise_on_limit=False)
        step += 1
        retired += CHUNK
        ref, got = _state(m_ref), _state(m_got)
        _assert_same(seed, step, ref, got, code_len, m_ref, m_got)
        _assert_same(seed, step, ref, _state(m_prof), code_len,
                     m_ref, m_prof, label="profiled")
        _assert_same(seed, step, ref, _state(m_jit), code_len,
                     m_ref, m_jit, label="jit")
        if ref["halted"]:
            break

    assert m_ref.core.halted, (
        f"seed {seed}: program failed to halt within {TOTAL_LIMIT} "
        f"instructions (generator bug)"
    )
    # The fast path must actually have been on the hook: the chained
    # machine should have dispatched through the tcache, and the
    # profiled machine's sink should have recorded its dispatches.
    stats = m_got.perf.tcache
    assert stats.dispatches > 0, f"seed {seed}: tcache never dispatched"
    assert m_prof.profiler.total_traces > 0, (
        f"seed {seed}: profiler recorded no traces"
    )
    assert m_jit.perf.tcache.dispatches > 0, (
        f"seed {seed}: jit machine never dispatched"
    )


SNAPSHOT_SEEDS = 8


def test_differential_snapshot_midrun(snap_seed):
    """Snapshot all four machines mid-run, continue to halt in
    lockstep, restore, and replay: the second continuation must retrace
    the first bit-for-bit.  This pins two properties at once — the
    snapshot captures *every* guest-visible bit (missing state shows up
    as a pass-1 vs pass-2 divergence), and the host fast paths carry no
    guest-visible residue across a restore (the tcache still holds
    pass-1 superblocks, the profiler keeps pass-1 traces, the JIT keeps
    pass-1 compiled functions; none may leak into the replayed
    architectural state)."""
    from repro.machine.snapshot import restore_snapshot, take_snapshot

    rng = random.Random(0x5AFE + snap_seed)
    source = _gen_program(rng)

    # Probe the program's total length on a throwaway interpreter so
    # the snapshot lands squarely mid-run, whatever the generator made.
    probe = _build(tcache=False)
    probe.load(probe.assemble(source, base=CODE_BASE))
    probe.core.pc = CODE_BASE
    probe.run(max_instructions=TOTAL_LIMIT, raise_on_limit=False)
    assert probe.core.halted, f"snap seed {snap_seed}: probe never halted"
    snapshot_mid = max(1, probe.core.instret // 2)

    machines = (_build(tcache=False), _build(tcache=True),
                _build(tcache=True), _build(tcache=True, jit=True))
    m_ref, m_got, m_prof, m_jit = machines
    m_prof.set_profiling(True)
    for machine in machines:
        program = machine.assemble(source, base=CODE_BASE)
        machine.load(program)
        machine.core.pc = CODE_BASE
    code_len = 4 * len(program.words())

    def check(step):
        ref = _state(m_ref)
        _assert_same(snap_seed, step, ref, _state(m_got), code_len,
                     m_ref, m_got)
        _assert_same(snap_seed, step, ref, _state(m_prof), code_len,
                     m_ref, m_prof, label="profiled")
        _assert_same(snap_seed, step, ref, _state(m_jit), code_len,
                     m_ref, m_jit, label="jit")
        return ref

    def continue_to_halt():
        retired = 0
        while retired < TOTAL_LIMIT:
            for machine in machines:
                machine.run(max_instructions=CHUNK, raise_on_limit=False)
            retired += CHUNK
            ref = check(f"+{retired}")
            if ref["halted"]:
                return ref
        raise AssertionError(
            f"snap seed {snap_seed}: program failed to halt")

    for machine in machines:
        machine.run(max_instructions=snapshot_mid, raise_on_limit=False)
    mid = check("mid")
    assert not mid["halted"], (
        f"snap seed {snap_seed}: halted before the snapshot point")
    snaps = [take_snapshot(machine) for machine in machines]

    first = continue_to_halt()

    for machine, snap in zip(machines, snaps):
        restore_snapshot(machine, snap)
    replay_mid = check("restored")
    assert not replay_mid["halted"]
    second = continue_to_halt()

    # The replay matches the first continuation on every architectural
    # field.  ``cycles`` is excluded by design: the cycle counter is
    # engine-owned timing state, not snapshot-restorable guest state
    # (instret *is* restored, and is compared).
    for key in first:
        if key == "cycles":
            continue
        assert first[key] == second[key], (
            f"snap seed {snap_seed}: replay diverges on {key} "
            f"(first={first[key]!r}, replay={second[key]!r})"
        )


def test_chaining_engages_on_loops():
    """Structural check: a loopy program actually follows chain links
    (guards the fuzz harness against silently testing chaining-off)."""
    m = _build(tcache=True)
    m.load_and_run("""
_start:
    li   s0, 2000
loop:
    addi a0, a0, 1
    addi s0, s0, -1
    j    hop
hop:
    blt  zero, s0, loop
    halt
""", base=CODE_BASE)
    stats = m.perf.tcache
    assert m.reg("a0") == 2000
    assert stats.chain_links >= 2
    assert stats.chain_hits > 1000
    assert stats.chain_longest > 100


def test_polymorphic_branch_stays_chained():
    """A branch whose target flips every iteration keeps *both*
    successors linked in the LRU target map: secondary-entry hits
    accumulate while chain breaks stay O(1).  Under the monomorphic
    single-slot chainer this program broke and relinked its chain on
    every flip (≈1 break per iteration)."""
    m = _build(tcache=True)
    m.load_and_run("""
_start:
    li   s0, 2000
loop:
    andi t1, s0, 1
    beqz t1, even
odd:
    addi a0, a0, 1
    j    next
even:
    addi a1, a1, 1
next:
    addi s0, s0, -1
    bnez s0, loop
    halt
""", base=CODE_BASE)
    assert m.reg("a0") == 1000        # odd iterations (s0 = 1999, 1997, ...)
    assert m.reg("a1") == 1000
    stats = m.perf.tcache
    assert stats.chain_poly_hits > 1500, (
        f"LRU target map not engaging: {stats.chain_poly_hits} poly hits"
    )
    assert stats.chain_breaks <= 8, (
        f"alternating branch still breaking chains: {stats.chain_breaks}"
    )
    # Polymorphic hits are a subset of chain hits.
    assert stats.chain_hits >= stats.chain_poly_hits


def test_polymorphic_jalr_three_targets():
    """An indirect jump rotating through three targets fits the
    LINKS_MAX=4 target map: all three successors stay linked."""
    m = _build(tcache=True)
    m.load_and_run("""
_start:
    li   s0, 1500
loop:
    # t0 = s0 % 3 via repeated subtraction on the low bits (cheap mod):
    andi t1, s0, 3
    li   t0, arm0
    beqz t1, go
    li   t0, arm1
    addi t1, t1, -1
    beqz t1, go
    li   t0, arm2
go:
    jalr zero, 0(t0)
arm0:
    addi a0, a0, 1
    j    next
arm1:
    addi a1, a1, 1
    j    next
arm2:
    addi a2, a2, 1
next:
    addi s0, s0, -1
    bnez s0, loop
    halt
""", base=CODE_BASE)
    assert m.reg("a0") + m.reg("a1") + m.reg("a2") == 1500
    stats = m.perf.tcache
    assert stats.chain_poly_hits > 1000, (
        f"three-target jalr not staying chained: "
        f"{stats.chain_poly_hits} poly hits, {stats.chain_breaks} breaks"
    )
