"""Direct tests of the ULI scheduler-support mroutines (uli_kinfo/uli_kset)
and layered-machine dynamics during execution."""

import pytest

from repro import Cause, MRoutine, build_metal_machine
from repro.mcode.privilege import make_kernel_user_routines
from repro.mcode.uli import make_uli_routines

FAULT_ENTRY = 0x1040
KIRQ_ENTRY = 0x1080


def machine():
    routines = (make_kernel_user_routines(0x2E00, FAULT_ENTRY)
                + make_uli_routines(KIRQ_ENTRY))
    m = build_metal_machine(routines, with_caches=False)
    m.route_cause(Cause.PRIVILEGE, "priv_fault")
    return m


class TestKinfoKset:
    def test_kset_then_kinfo_roundtrip(self):
        m = machine()
        m.load_and_run("""
_start:
    li   a0, 0x4444          # pretend resume PC
    li   a1, 1               # pretend level
    menter MR_ULI_KSET
    li   a0, 0
    li   a1, 0
    menter MR_ULI_KINFO
    mv   s0, a0
    mv   s1, a1
    halt
""", max_instructions=10_000)
        assert m.reg("s0") == 0x4444
        assert m.reg("s1") == 1

    def test_kret_resumes_at_kset_target(self):
        m = machine()
        m.load_and_run("""
_start:
    li   a0, target
    li   a1, 1
    menter MR_ULI_KSET
    menter MR_ULI_KRET       # jumps to target at level 1
    li   s0, 999             # skipped
    halt
target:
    menter MR_PRIV_GET
    mv   s1, a0
    halt
""", max_instructions=10_000)
        assert m.reg("s0") == 0
        assert m.reg("s1") == 1
        assert m.core.metal.delivery.interrupts_enabled  # kret re-enables

    def test_kinfo_requires_kernel(self):
        m = machine()
        m.load_and_run(f"""
_start:
    j    go
.org {FAULT_ENTRY:#x}
kfault:
    li   s11, 1
    halt
go:
    li   ra, user
    menter MR_KEXIT
user:
    menter MR_ULI_KINFO      # user level -> privilege fault
    halt
""", base=0x1000, max_instructions=10_000)
        assert m.reg("s11") == 1

    def test_kset_requires_kernel(self):
        m = machine()
        m.load_and_run(f"""
_start:
    j    go
.org {FAULT_ENTRY:#x}
kfault:
    li   s11, 1
    halt
go:
    li   ra, user
    menter MR_KEXIT
user:
    li   a0, 0x4000
    li   a1, 0
    menter MR_ULI_KSET
    halt
""", base=0x1000, max_instructions=10_000)
        assert m.reg("s11") == 1


class TestLayerDynamicsDuringRun:
    def test_push_layer_mid_run_changes_interception(self):
        from repro import build_nested_metal_machine
        from repro.isa.metal_ops import pack_intercept_spec
        from repro.isa.opcodes import OP_LOAD

        tag = MRoutine(name="tag", entry=0, source="""
            li   t4, 0x777
            rmr  t0, m29
            srli t0, t0, 7
            andi t0, t0, 31
            wmr  m26, t0
            wmr  m27, t4
            mexitm
        """)
        m = build_nested_metal_machine([tag], layer_names=("vmm",))
        m.write_word(0x3000, 0x123)
        prog = m.assemble("""
_start:
    li   t0, 0x3000
    lw   a0, 0(t0)         # before the layer push: raw memory
pause:
    nop
    lw   a1, 0(t0)         # after: intercepted + emulated
    halt
""", base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        pause = prog.symbols["pause"]
        while m.core.pc != pause:
            m.sim.step()
        layer = m.core.metal.push_layer("app")
        layer.intercept.enable(pack_intercept_spec(OP_LOAD, funct3=2),
                               m.metal_image.entry_of("tag"))
        m.run(max_instructions=1000)
        assert m.reg("a0") == 0x123
        assert m.reg("a1") == 0x777
