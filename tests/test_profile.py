"""MPROF tests: trace event sink, metrics registry, exporters,
profile-guided preformation and the profile CLI.

The load-bearing properties:

* the sink is guest-invisible — enabling profiling never changes
  architectural state, instruction counts or cycle counts, and with no
  sink attached the counters don't move;
* the ring buffer wraps without losing the aggregates;
* snapshot/delta isolates exactly the metered region;
* exported Chrome-trace JSON is schema-valid (and the validator actually
  rejects malformed payloads);
* preformed superblocks are indistinguishable from dynamically formed
  ones (lockstep differential).
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro import MRoutine, build_metal_machine
from repro.machine.builder import MachineConfig
from repro.profile.exporters import chrome_trace, validate_chrome_trace
from repro.profile.preform import plan_preform
from repro.profile.registry import MetricsRegistry, Snapshot
from repro.profile.sink import TraceAggregate, TraceEventSink

LOOP = """
_start:
    li   s0, %d
loop:
    addi a0, a0, 1
    addi s0, s0, -1
    bnez s0, loop
    halt
"""

#: Pure mroutine with an internal loop: the preformation target.
SPIN = MRoutine(name="spin", entry=0, source="""
    li   t0, 12
spin_loop:
    addi t1, t1, 3
    xor  t2, t1, t0
    addi t0, t0, -1
    bnez t0, spin_loop
    mexit
""")

MCODE = """
_start:
    li   s0, %d
loop:
    menter MR_SPIN
    addi s0, s0, -1
    bnez s0, loop
    halt
"""


def _machine(**kwargs):
    return build_metal_machine([SPIN], with_caches=False, **kwargs)


def _arch_state(m):
    return (list(m.core.regs), m.core.pc, m.core.instret, m.cycles,
            m.core.halted)


class TestSink:
    def test_ring_wraparound_keeps_aggregates(self):
        sink = TraceEventSink(capacity=8)
        for i in range(20):
            sink.note_trace("mem", 0x1000 + 4 * (i % 3), i % 5, 10, 100 * i, 7)
        assert sink.total_traces == 20
        assert sink.wrapped
        assert len(sink) == 8
        records = sink.records()
        assert len(records) == 8
        # Oldest-first: the surviving records are the last 8 notes.
        assert [r[0] for r in records] == [100 * i for i in range(12, 20)]
        # Aggregates cover all 20 notes, not just the ring survivors.
        table = sink.trace_table()
        assert sum(a.hits for a in table.values()) == 20
        assert sum(a.instructions for a in table.values()) == 200

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceEventSink(capacity=0)

    def test_hot_traces_ordering(self):
        sink = TraceEventSink()
        sink.note_trace("mem", 0x1000, 1, 50, 0, 5)
        sink.note_trace("mem", 0x2000, 1, 500, 0, 5)
        sink.note_trace("mram", 0x0, 1, 100, 0, 5)
        hot = sink.hot_traces(top=2)
        assert [(a.ns, a.head_pc) for a in hot] == [("mem", 0x2000),
                                                   ("mram", 0x0)]

    def test_event_log_bounded(self):
        sink = TraceEventSink(capacity=4)
        for i in range(10):
            sink.tcache_event("compile", "mem", 4 * i)
        assert len(sink.events()) == 4
        assert sink.events_dropped == 6

    def test_clear(self):
        sink = TraceEventSink(capacity=4)
        sink.note_trace("mem", 0, 0, 1, 0, 1)
        sink.tcache_event("flush", "mem", 0)
        sink.clear()
        assert len(sink) == 0
        assert sink.total_traces == 0
        assert sink.events() == []


class TestGuestInvisibility:
    def test_profiling_on_is_bit_identical(self):
        m_off = _machine()
        m_on = _machine()
        m_on.set_profiling(True)
        src = MCODE % 50
        m_off.load_and_run(src)
        m_on.load_and_run(src)
        assert _arch_state(m_off) == _arch_state(m_on)
        assert m_on.profiler.total_traces > 0

    def test_profiling_off_zero_counter_deltas(self):
        m = _machine()
        sink = m.set_profiling(True)
        m.load_and_run(LOOP % 100)
        recorded = sink.total_traces
        assert recorded > 0
        m.set_profiling(False)
        assert m.profiler is None
        m.reset(pc=0x1000)
        m.run(max_instructions=400, raise_on_limit=False)
        # Detached sink sees nothing new.
        assert sink.total_traces == recorded

    def test_detach_restores_unbounded_chains(self):
        m = _machine()
        m.set_profiling(True)
        quantum = m.sim.PROFILE_CHAIN_QUANTUM
        m.load_and_run(LOOP % 2000)
        assert m.perf.tcache.chain_longest <= quantum
        m2 = _machine()
        m2.load_and_run(LOOP % 2000)
        assert m2.perf.tcache.chain_longest > quantum


class TestRegistry:
    def test_snapshot_delta_isolates_region(self):
        m = _machine()
        m.set_profiling(True)
        reg = MetricsRegistry(m)
        m.load_and_run(LOOP % 1000)
        before = reg.snapshot()
        m.reset(pc=0x1000)
        m.run(max_instructions=350, raise_on_limit=False)
        delta = reg.snapshot().delta(before)
        assert delta.guest_instructions == 350
        assert delta.counters["fast_instructions"] > 0
        # Every delta aggregate reflects only the second run.
        total = sum(a.instructions for a in delta.traces.values())
        assert 0 < total <= 350

    def test_zero_delta_when_idle(self):
        m = _machine()
        reg = MetricsRegistry(m)
        m.load_and_run(LOOP % 50)
        snap = reg.snapshot()
        delta = reg.snapshot().delta(snap)
        assert delta.guest_instructions == 0
        assert all(v == 0 for v in delta.counters.values())
        assert delta.traces == {}

    def test_mroutine_attribution(self):
        m = _machine()
        m.set_profiling(True)
        reg = MetricsRegistry(m)
        m.load_and_run(MCODE % 60)
        rows = reg.attribute()
        spin = [r for r in rows if r.routine == "spin"]
        assert spin, "no trace attributed to the spin mroutine"
        assert spin[0].ns == "mram"
        assert spin[0].offset == 0
        report = reg.mroutine_report()
        named = {name for name, *_ in report}
        assert "spin" in named
        top_name, _, top_instrs, _, _ = report[0]
        assert top_name == "spin" and top_instrs > 0

    def test_loop_head_attribution(self):
        """A trace headed at a CFG back-edge target is flagged as a loop."""
        from repro.profile.registry import attribute_trace
        from repro.profile.sink import TraceAggregate

        m = _machine()
        routine = m.metal_image.routines["spin"]
        # spin_loop is the third instruction: byte offset 8 (li expands
        # to lui+addi).
        head = routine.code_offset + 8
        row = attribute_trace(m, TraceAggregate("mram", head, 1, 1, 0, 1))
        assert row.routine == "spin"
        assert row.loop, "back-edge target not flagged as a loop head"
        entry = attribute_trace(
            m, TraceAggregate("mram", routine.code_offset, 1, 1, 0, 1))
        assert not entry.loop


class TestShardMergeDeterminism:
    """Regression: hot-trace ranking must be a pure function of the
    aggregate contents.  Equal-count traces used to rank in dict
    insertion order, so a snapshot rebuilt from shard deltas (whose
    union order depends on merge order) disagreed with the inline
    snapshot of the same run — the stable ``(-count, ns, head_pc)``
    tie-break makes every path byte-identical."""

    @staticmethod
    def _snap(*rows):
        traces = {}
        for ns, pc, instrs in rows:
            traces[(ns, pc)] = TraceAggregate(ns, pc, 1, instrs, 0, instrs)
        return Snapshot(traces=traces)

    def test_equal_count_tie_break_stable_under_add_order(self):
        a = self._snap(("mem", 0x2000, 100))
        b = self._snap(("mem", 0x1000, 100), ("mram", 0x40, 100))
        ab = [(r.ns, r.head_pc) for r in a.add(b).hot_traces()]
        ba = [(r.ns, r.head_pc) for r in b.add(a).hot_traces()]
        # Both orders agree, and on the documented key: count desc,
        # then (ns, head_pc) ascending.
        assert ab == ba == [("mem", 0x1000), ("mem", 0x2000),
                            ("mram", 0x40)]

    def test_pool_accumulation_matches_inline_ordering(self):
        # One logical profile split over two per-request deltas of the
        # same machine (MSERVE's pool path), recorded in opposite
        # orders.  An inline sink that saw every event and the pooled
        # (delta-accumulated) snapshot must rank identically.
        inline = TraceEventSink()
        for pc in (0x3000, 0x1000, 0x2000):
            inline.note_trace("mem", pc, 1, 64, 0, 64)
        delta_a = self._snap(("mem", 0x3000, 64), ("mem", 0x2000, 64))
        delta_b = self._snap(("mem", 0x1000, 64))
        pooled = Snapshot().add(delta_a).add(delta_b)
        assert [(r.ns, r.head_pc) for r in pooled.hot_traces()] == \
            [(r.ns, r.head_pc) for r in inline.hot_traces()]

    def test_merge_is_insertion_order_independent(self):
        a = self._snap(("mem", 0x2000, 7), ("mem", 0x1000, 7))
        b = self._snap(("mem", 0x1000, 7), ("mem", 0x3000, 7))
        fwd = Snapshot.merge({"s0": a, "s1": b})
        rev = Snapshot.merge({"s1": b, "s0": a})
        assert json.dumps(fwd.to_dict(), sort_keys=True) == \
            json.dumps(rev.to_dict(), sort_keys=True)
        assert [(r.ns, r.head_pc) for r in fwd.hot_traces()] == \
            [(r.ns, r.head_pc) for r in rev.hot_traces()]


class TestExporters:
    def _profiled_machine(self):
        m = _machine()
        m.set_profiling(True)
        m.load_and_run(MCODE % 40)
        return m

    def test_chrome_trace_schema_valid(self):
        m = self._profiled_machine()
        payload = chrome_trace(m, m.profiler, registry=MetricsRegistry(m))
        validate_chrome_trace(payload)                  # must not raise
        json.dumps(payload)                             # serialisable
        events = payload["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "i" for e in events)      # tcache compiles
        # mram retirements carry their attribution as the event name.
        assert any(e["name"].startswith("spin+") for e in events
                   if e["ph"] == "X")

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])                   # not an object
        with pytest.raises(ValueError):
            validate_chrome_trace({})                   # no traceEvents
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Q", "name": "x", "pid": 1}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "x", "pid": 1,
                                  "tid": 1, "ts": 0}]})  # missing dur
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "i", "name": "x", "pid": 1,
                                  "ts": 0, "s": "z"}]})  # bad scope

    def test_hot_trace_report_contents(self):
        from repro.profile.exporters import format_hot_traces

        m = self._profiled_machine()
        reg = MetricsRegistry(m)
        text = format_hot_traces(m, reg, top=5)
        assert "spin+0x0" in text
        assert "per-mroutine attribution" in text
        assert "addi" in text                           # disassembly


class TestPreformation:
    def test_plan_covers_pure_routine(self):
        m = _machine()
        plan = plan_preform(m.metal_image)
        routine = m.metal_image.routines["spin"]
        base = routine.code_offset
        assert base in plan
        assert base + 8 in plan                          # spin_loop head
        # Loop heads come first.
        assert plan[0] == base + 8

    def test_profile_filter(self):
        m = _machine()
        # A profile with no mram traces filters everything out.
        assert plan_preform(m.metal_image, profile=[]) == []
        sink = TraceEventSink()
        sink.note_trace("mram", m.metal_image.routines["spin"].code_offset,
                        1, 10, 0, 5)
        assert plan_preform(m.metal_image, profile=sink)

    def test_preform_counters(self):
        m = _machine()
        blocks, links = m.preform_superblocks()
        assert blocks > 0
        assert links > 0
        assert m.perf.tcache.preformed_blocks == blocks
        assert m.perf.tcache.preformed_links == links
        # Idempotent: everything already compiled on the second call.
        again, _ = m.preform_superblocks()
        assert again == 0

    def test_lockstep_parity_vs_dynamic(self):
        """Preformed and dynamically chained machines stay bit-identical
        through a Metal-heavy run (chunked lockstep, mid-chain
        boundaries)."""
        src = MCODE % 80
        m_dyn = _machine()
        m_pre = _machine()
        m_pre.preform_superblocks()
        for machine in (m_dyn, m_pre):
            program = machine.assemble(src, base=0x1000)
            machine.load(program)
            machine.core.pc = 0x1000
        for step in range(200):
            m_dyn.run(max_instructions=97, raise_on_limit=False)
            m_pre.run(max_instructions=97, raise_on_limit=False)
            assert _arch_state(m_dyn) == _arch_state(m_pre), (
                f"step {step}: preformed machine diverged"
            )
            if m_dyn.core.halted:
                break
        assert m_dyn.core.halted
        # The preformed machine compiled its mram blocks ahead of time:
        # no mram compile misses beyond the preformed set.
        assert m_pre.perf.tcache.preformed_blocks > 0

    def test_builder_preform_flag(self):
        m = build_metal_machine([SPIN], config=MachineConfig(
            with_caches=False, preform=True))
        assert m.perf.tcache.preformed_blocks > 0
        m.load_and_run(MCODE % 10)
        assert m.core.halted


class TestStepHub:
    def test_multiple_subscribers(self):
        m = _machine()
        seen_a, seen_b = [], []
        m.sim.add_step_hook(seen_a.append)
        m.sim.add_step_hook(seen_b.append)
        m.load_and_run(LOOP % 5)
        assert len(seen_a) == len(seen_b) > 0
        m.sim.remove_step_hook(seen_a.append)  # unknown fn: no-op
        m.sim.remove_step_hook(seen_b[0])      # not a hook either

    def test_absorbs_raw_trace_fn(self):
        m = _machine()
        raw, hooked = [], []
        m.sim.trace_fn = raw.append
        m.sim.add_step_hook(hooked.append)
        m.load_and_run(LOOP % 5)
        assert len(raw) == len(hooked) > 0
        m.sim.remove_step_hook(hooked.append)

    def test_tracer_composes_with_profiling(self):
        from repro.machine.trace import Tracer

        m = _machine()
        m.set_profiling(True)
        with Tracer(m, limit=100) as tracer:
            m.load_and_run(LOOP % 10)
        assert len(tracer) > 0
        assert m.profiler.total_traces > 0


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "profile", *args],
            capture_output=True, text=True, timeout=120,
        )

    def test_list(self):
        result = self._run("--list")
        assert result.returncode == 0
        assert "mcode_heavy" in result.stdout

    def test_workload_report(self):
        result = self._run("mcode_heavy", "--iters", "50", "--top", "3")
        assert result.returncode == 0, result.stderr
        assert "hot traces" in result.stdout
        assert "spin" in result.stdout                  # attribution
        assert "per-mroutine attribution" in result.stdout

    def test_json_export(self, tmp_path):
        out = tmp_path / "trace.json"
        result = self._run("tight_loop", "--iters", "200",
                           "--json", str(out))
        assert result.returncode == 0, result.stderr
        payload = json.loads(out.read_text())
        validate_chrome_trace(payload)
        assert payload["traceEvents"]

    def test_preform_replay(self):
        result = self._run("mcode_heavy", "--iters", "50", "--preform")
        assert result.returncode == 0, result.stderr
        assert "preformation replay" in result.stdout

    def test_source_file(self, tmp_path):
        path = tmp_path / "prog.s"
        path.write_text(LOOP % 100)
        result = self._run(str(path))
        assert result.returncode == 0, result.stderr
        assert "[halt]" in result.stdout

    def test_unknown_target(self):
        result = self._run("/nonexistent/x.s")
        assert result.returncode == 2
