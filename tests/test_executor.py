"""Executor semantics through full programs on the functional engine."""

import pytest

from repro import build_metal_machine, build_trap_machine, MRoutine
from repro.errors import GuestPanic


def run(machine, body, max_instructions=100_000):
    machine.load_and_run(f"_start:\n{body}\n    halt\n",
                         max_instructions=max_instructions)
    return machine


@pytest.fixture
def m():
    return build_trap_machine(with_caches=False)


class TestAluPrograms:
    def test_arith_chain(self, m):
        run(m, """
            li   a0, 10
            li   a1, 3
            add  a2, a0, a1
            sub  a3, a0, a1
            mul  a4, a0, a1
            div  a5, a0, a1
            rem  a6, a0, a1
        """)
        assert m.reg("a2") == 13
        assert m.reg("a3") == 7
        assert m.reg("a4") == 30
        assert m.reg("a5") == 3
        assert m.reg("a6") == 1

    def test_x0_is_hardwired(self, m):
        run(m, """
            addi zero, zero, 5
            mv   a0, zero
        """)
        assert m.reg("a0") == 0

    def test_logic_and_shifts(self, m):
        run(m, """
            li   a0, 0xF0F0
            li   a1, 0x0FF0
            and  a2, a0, a1
            or   a3, a0, a1
            xor  a4, a0, a1
            slli a5, a0, 4
            srli a6, a0, 4
        """)
        assert m.reg("a2") == 0x0FF0 & 0xF0F0
        assert m.reg("a3") == 0xFFF0
        assert m.reg("a4") == 0xFF00
        assert m.reg("a5") == 0xF0F00
        assert m.reg("a6") == 0xF0F


class TestMemoryPrograms:
    def test_store_load_word(self, m):
        run(m, """
            li   t0, 0x2000
            li   t1, 0x12345678
            sw   t1, 0(t0)
            lw   a0, 0(t0)
        """)
        assert m.reg("a0") == 0x12345678

    def test_byte_sign_extension(self, m):
        run(m, """
            li   t0, 0x2000
            li   t1, 0x80
            sb   t1, 0(t0)
            lb   a0, 0(t0)
            lbu  a1, 0(t0)
        """)
        assert m.reg("a0") == 0xFFFFFF80
        assert m.reg("a1") == 0x80

    def test_half_sign_extension(self, m):
        run(m, """
            li   t0, 0x2000
            li   t1, 0x8000
            sh   t1, 0(t0)
            lh   a0, 0(t0)
            lhu  a1, 0(t0)
        """)
        assert m.reg("a0") == 0xFFFF8000
        assert m.reg("a1") == 0x8000

    def test_negative_offset(self, m):
        run(m, """
            li   t0, 0x2010
            li   t1, 77
            sw   t1, -16(t0)
            lw   a0, -16(t0)
        """)
        assert m.reg("a0") == 77


class TestControlFlow:
    def test_loop_sum(self, m):
        run(m, """
            li   a0, 0
            li   t0, 5
        loop:
            add  a0, a0, t0
            addi t0, t0, -1
            bnez t0, loop
        """)
        assert m.reg("a0") == 15

    def test_jal_links(self, m):
        run(m, """
            jal  ra, target
        back:
            j    out
        target:
            mv   a0, ra
            jr   ra
        out:
        """)
        # ra should point at `back`
        assert m.reg("a0") == m.reg("ra")

    def test_jalr_clears_low_bit(self, m):
        run(m, """
            li   t0, target + 1
            jalr ra, 0(t0)
            j    done
        target:
            li   a0, 55
            j    done
        done:
        """)
        assert m.reg("a0") == 55

    def test_auipc(self, m):
        m.load_and_run("""
_start:
    auipc a0, 0
    halt
""", base=0x1000)
        assert m.reg("a0") == 0x1000


class TestTrapsOnBaseline:
    def test_ecall_without_mtvec_panics(self, m):
        with pytest.raises(GuestPanic):
            run(m, "ecall")

    def test_ecall_dispatches_to_mtvec(self, m):
        run(m, """
            li   t0, handler
            csrrw zero, CSR_MTVEC, t0
            ecall
            j    never
        handler:
            li   a0, 123
            csrrs a1, CSR_MCAUSE, zero
        never:
        """)
        assert m.reg("a0") == 123
        assert m.reg("a1") == 5  # CAUSE_ECALL

    def test_mret_resumes_after_ecall(self, m):
        run(m, """
            li   t0, handler
            csrrw zero, CSR_MTVEC, t0
            li   a0, 0
            ecall
            addi a0, a0, 1
            j    done
        handler:
            csrrs t0, CSR_MEPC, zero
            addi t0, t0, 4
            csrrw zero, CSR_MEPC, t0
            li   a0, 10
            mret
        done:
        """)
        assert m.reg("a0") == 11

    def test_illegal_instruction_cause(self, m):
        run(m, """
            li   t0, handler
            csrrw zero, CSR_MTVEC, t0
            .word 0xFFFFFFFF
            j    done
        handler:
            csrrs a0, CSR_MCAUSE, zero
            halt
        done:
        """)
        assert m.reg("a0") == 1  # ILLEGAL_INSTRUCTION

    def test_misaligned_load_cause_and_tval(self, m):
        run(m, """
            li   t0, handler
            csrrw zero, CSR_MTVEC, t0
            li   t1, 0x2001
            lw   a0, 0(t1)
            j    done
        handler:
            csrrs a0, CSR_MCAUSE, zero
            csrrs a1, CSR_MTVAL, zero
            halt
        done:
        """)
        assert m.reg("a0") == 3  # MISALIGNED_LOAD
        assert m.reg("a1") == 0x2001

    def test_bus_error_on_unmapped(self, m):
        run(m, """
            li   t0, handler
            csrrw zero, CSR_MTVEC, t0
            li   t1, 0xE0000000
            lw   a0, 0(t1)
            j    done
        handler:
            csrrs a0, CSR_MCAUSE, zero
            halt
        done:
        """)
        assert m.reg("a0") == 6  # BUS_ERROR

    def test_metal_instruction_illegal_on_baseline(self, m):
        run(m, """
            li   t0, handler
            csrrw zero, CSR_MTVEC, t0
            menter 0
            j    done
        handler:
            csrrs a0, CSR_MCAUSE, zero
            halt
        done:
        """)
        assert m.reg("a0") == 1

    def test_csr_cycle_readable(self, m):
        run(m, """
            csrrs a0, CSR_CYCLE, zero
            csrrs a1, CSR_INSTRET, zero
        """)
        assert m.reg("a1") >= 1

    def test_user_mode_blocks_csr(self, m):
        run(m, """
            li   t0, handler
            csrrw zero, CSR_MTVEC, t0
            # drop to user mode at `user`
            li   t0, user
            csrrw zero, CSR_MEPC, t0
            csrrwi zero, CSR_MSTATUS, 0
            mret
        user:
            csrrs a0, CSR_MCAUSE, zero   # illegal in user mode
            j    done
        handler:
            li   a0, 99
            halt
        done:
        """)
        assert m.reg("a0") == 99


class TestBaselineTlbOps:
    def test_machine_mode_refill(self, m):
        run(m, """
            # map VA 0x400000 -> PA 0x2000 RW, then store/load through it
            li   t0, 0x400000          # rs1: va | asid 0
            li   t1, 0x2000 + 1 + 2    # rs2: pa | R | W
            mtlbw t0, t1
            # identity-map the code page BEFORE enabling paging
            li   t3, 0x1000
            li   t4, 0x1000 + 1 + 4    # R | X
            mtlbw t3, t4
            li   t2, 1
            mpgon t2                   # paging on
            li   t0, 0x400000
            li   t1, 0xABCD
            sw   t1, 0(t0)
            lw   a0, 0(t0)
            li   t2, 0
            mpgon t2                   # paging off again
        """)
        assert m.reg("a0") == 0xABCD

    def test_user_mode_tlb_op_illegal(self, m):
        run(m, """
            li   t0, handler
            csrrw zero, CSR_MTVEC, t0
            li   t0, user
            csrrw zero, CSR_MEPC, t0
            csrrwi zero, CSR_MSTATUS, 0
            mret
        user:
            mtlbf
            j    done
        handler:
            csrrs a0, CSR_MCAUSE, zero
            halt
        done:
        """)
        assert m.reg("a0") == 1


class TestMetalOnlyGating:
    def test_metal_only_in_normal_mode_is_illegal(self):
        # A skip-forward handler: advance m31 past the illegal instruction.
        skipper = MRoutine(name="skipper", entry=0, source="""
            rmr  t6, m30
            addi t6, t6, 4
            wmr  m31, t6
            mexit
        """)
        m = build_metal_machine([skipper], with_caches=False)
        m.route_cause(1, "skipper")
        m.load_and_run("""
_start:
    mexit                  # metal-only in normal mode -> ILLEGAL
    rmr  a0, m0            # also illegal -> skipped too
    li   a0, 1
    halt
""")
        assert m.reg("a0") == 1
        assert m.core.metal.stats.deliveries.get(1, 0) == 2
