"""Assembler unit tests: syntax, directives, pseudo-instructions, errors."""

import pytest

from repro.asm import assemble
from repro.errors import (
    AsmRangeError,
    AsmSymbolError,
    AsmSyntaxError,
)
from repro.isa import decode


def words(source, base=0, symbols=None):
    return assemble(source, base=base, symbols=symbols).words()


class TestBasics:
    def test_single_instruction(self):
        assert len(words("addi a0, a0, 1")) == 1

    def test_comments_and_blank_lines(self):
        prog = words("""
        # full-line comment
        addi a0, a0, 1   # trailing comment
        ; semicolon comment

        addi a0, a0, 2
        """)
        assert len(prog) == 2

    def test_register_spellings(self):
        a = words("add x10, x11, x12")
        b = words("add a0, a1, a2")
        assert a == b

    def test_fp_alias(self):
        assert words("mv fp, sp") == words("mv s0, sp")

    def test_case_insensitive_mnemonic(self):
        assert words("ADDI a0, a0, 1") == words("addi a0, a0, 1")

    def test_char_literal(self):
        instr = decode(words("li a0, 'A'")[1])  # addi carries the low part
        assert instr.imm == ord("A")

    def test_escaped_char_literal(self):
        instr = decode(words(r"addi a0, zero, '\n'")[0])
        assert instr.imm == 10


class TestLabels:
    def test_label_resolution(self):
        prog = assemble("""
        start:
            j end
            nop
        end:
            halt
        """, base=0x100)
        assert prog.symbols["start"] == 0x100
        assert prog.symbols["end"] == 0x108
        jal = decode(prog.words()[0])
        assert jal.imm == 8

    def test_backward_branch(self):
        prog = assemble("""
        loop:
            addi a0, a0, -1
            bnez a0, loop
        """)
        b = decode(prog.words()[1])
        assert b.imm == -4

    def test_redefined_label(self):
        with pytest.raises(AsmSymbolError):
            assemble("x:\nnop\nx:\nnop")

    def test_undefined_symbol(self):
        with pytest.raises(AsmSymbolError):
            assemble("j nowhere")

    def test_external_symbols(self):
        prog = assemble("li a0, MAGIC", symbols={"MAGIC": 0x1234})
        lo = decode(prog.words()[1])
        assert lo.imm == 0x234

    def test_multiple_labels_one_line(self):
        prog = assemble("a: b: nop")
        assert prog.symbols["a"] == prog.symbols["b"] == 0


class TestDirectives:
    def test_word_and_byte(self):
        prog = assemble("""
        .word 0x11223344, 5
        .byte 1, 2, 3, 4
        """)
        assert prog.words()[0] == 0x11223344
        assert prog.words()[1] == 5
        assert prog.words()[2] == 0x04030201

    def test_half(self):
        prog = assemble(".half 0x1234, 0x5678")
        assert prog.words()[0] == 0x56781234

    def test_ascii_and_asciz(self):
        prog = assemble('.asciz "AB"')
        assert bytes(prog.data) == b"AB\x00"

    def test_ascii_escapes(self):
        prog = assemble(r'.ascii "a\nb"')
        assert bytes(prog.data) == b"a\nb"

    def test_align(self):
        prog = assemble("""
        .byte 1
        .align 2
        marker:
        .word 9
        """)
        assert prog.symbols["marker"] == 4

    def test_org(self):
        prog = assemble("""
        nop
        .org 0x20
        there:
        nop
        """, base=0)
        assert prog.symbols["there"] == 0x20
        assert prog.size == 0x24

    def test_org_backwards_rejected(self):
        with pytest.raises(AsmRangeError):
            assemble("nop\nnop\n.org 4\nnop")

    def test_equ(self):
        prog = assemble("""
        .equ FOO, 40 + 2
        addi a0, zero, FOO
        """)
        assert decode(prog.words()[0]).imm == 42

    def test_space(self):
        prog = assemble("""
        .space 12
        end:
        """)
        assert prog.symbols["end"] == 12
        assert all(b == 0 for b in prog.data)

    def test_unknown_directive(self):
        with pytest.raises(AsmSyntaxError):
            assemble(".bogus 1")


class TestExpressions:
    def test_arithmetic(self):
        prog = assemble("addi a0, zero, (2 + 3) * 4 - 6 / 2")
        assert decode(prog.words()[0]).imm == 17

    def test_unary_minus(self):
        prog = assemble("addi a0, zero, -5 + 1")
        assert decode(prog.words()[0]).imm == -4

    def test_dot_is_location(self):
        prog = assemble("""
        nop
        .word .
        """, base=0x80)
        assert prog.words()[1] == 0x84

    def test_hi_lo_reconstruct(self):
        for value in (0x12345678, 0xFFFFF800, 0x800, 0x7FF, 0xDEADBEEF):
            prog = assemble(f"""
            lui  t0, %hi({value:#x})
            addi t0, t0, %lo({value:#x})
            """)
            hi = decode(prog.words()[0]).imm
            lo = decode(prog.words()[1]).imm
            assert (hi + lo) & 0xFFFFFFFF == value


class TestPseudoInstructions:
    def test_nop(self):
        assert words("nop") == words("addi zero, zero, 0")

    def test_li_small_and_large(self):
        prog = assemble("li a0, 42")
        assert len(prog.words()) == 2
        prog = assemble("li a0, 0xDEADBEEF")
        hi = decode(prog.words()[0]).imm
        lo = decode(prog.words()[1]).imm
        assert (hi + lo) & 0xFFFFFFFF == 0xDEADBEEF

    def test_mv_j_jr_ret(self):
        assert words("mv a0, a1") == words("addi a0, a1, 0")
        assert words("jr t0") == words("jalr zero, 0(t0)")
        assert words("ret") == words("jalr zero, 0(ra)")

    def test_branch_pseudos(self):
        assert words("beqz a0, 0") == words("beq a0, zero, 0")
        assert words("bgt a0, a1, 0") == words("blt a1, a0, 0")
        assert words("bleu a0, a1, 0") == words("bgeu a1, a0, 0")

    def test_setcc_pseudos(self):
        assert words("seqz a0, a1") == words("sltiu a0, a1, 1")
        assert words("snez a0, a1") == words("sltu a0, zero, a1")
        assert words("not a0, a1") == words("xori a0, a1, -1")
        assert words("neg a0, a1") == words("sub a0, zero, a1")

    def test_call_is_jal_ra(self):
        assert words("call 0x40") == words("jal ra, 0x40")

    def test_jal_shorthand(self):
        assert words("jal 0x40") == words("jal ra, 0x40")


class TestMetalSyntax:
    def test_menter_with_symbol(self):
        prog = assemble("menter MR_FOO", symbols={"MR_FOO": 9})
        assert decode(prog.words()[0]).imm == 9

    def test_rmr_wmr(self):
        instr = decode(words("rmr t0, m31")[0])
        assert (instr.rd, instr.rs1) == (5, 31)
        instr = decode(words("wmr m0, a0")[0])
        assert (instr.rd, instr.rs1) == (0, 10)

    def test_bad_mreg(self):
        with pytest.raises(AsmSyntaxError):
            assemble("rmr t0, m32")

    def test_mld_mst(self):
        instr = decode(words("mld a0, 8(t1)")[0])
        assert (instr.rd, instr.rs1, instr.imm) == (10, 6, 8)
        instr = decode(words("mst a0, 12(zero)")[0])
        assert (instr.rs2, instr.rs1, instr.imm) == (10, 0, 12)


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AsmSyntaxError):
            assemble("frobnicate a0")

    def test_wrong_operand_count(self):
        with pytest.raises(AsmSyntaxError):
            assemble("add a0, a1")

    def test_bad_register(self):
        with pytest.raises(AsmSyntaxError):
            assemble("add a0, a1, q7")

    def test_imm_out_of_range_reported_with_line(self):
        with pytest.raises(AsmRangeError) as err:
            assemble("nop\naddi a0, a0, 99999")
        assert ":2:" in str(err.value)

    def test_branch_out_of_range(self):
        source = "start:\n" + "nop\n" * 1200 + "beq a0, a1, start\n"
        with pytest.raises(AsmRangeError):
            assemble(source)


class TestListing:
    def test_listing_addresses(self):
        prog = assemble("nop\nnop", base=0x200)
        assert [addr for addr, _, _ in prog.listing] == [0x200, 0x204]

    def test_disassembly_roundtrip(self):
        src = """
        addi a0, zero, 7
        sw a0, 16(sp)
        """
        prog = assemble(src)
        text = prog.disassembly()
        assert "addi a0, zero, 7" in text
        assert "sw a0, 16(sp)" in text
