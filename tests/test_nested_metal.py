"""§3.5 "Nested Metal" tests: layered interception and delivery."""

import pytest

from repro import MRoutine, build_nested_metal_machine, Cause
from repro.errors import NestedMetalError
from repro.isa.metal_ops import pack_intercept_spec
from repro.isa.opcodes import OP_LOAD
from repro.metal.nested import MetalLayer

ICEPT_LW = pack_intercept_spec(OP_LOAD, funct3=2)


def routines():
    """Markers: each layer's handler stamps a register and skips (app/os) or
    replays (os_replay) the intercepted instruction."""
    return [
        MRoutine(name="app_icpt", entry=0, source="""
            li   t4, 1           # app layer saw it (skip semantics)
            mexit
        """),
        MRoutine(name="os_icpt", entry=1, source="""
            li   t5, 1           # os layer saw it (skip semantics)
            mexit
        """),
        MRoutine(name="os_replay", entry=2, source="""
            li   t5, 1
            wmr  m9, t0          # transparent: spill t0
            rmr  t0, m30
            wmr  m31, t0         # replay the intercepted instruction
            rmr  t0, m9
            mexit
        """, shared_mregs=(9,)),
        MRoutine(name="vmm_icpt", entry=3, source="""
            li   t6, 1           # vmm layer saw it
            mexit
        """),
        # Interrupt chain convention for these tests: the first handler in
        # the chain parks the interrupted t0 in m11; the terminal handler
        # restores it before mexit.
        MRoutine(name="irq_vmm", entry=4, source="""
            li   s2, 1           # vmm interrupt handler
            wmr  m11, t0         # park interrupted t0 for the chain
            rmr  t0, m28
            mraise t0            # propagate the interrupt one layer up
        """, shared_mregs=(11,)),
        MRoutine(name="irq_os", entry=5, source="""
            li   s3, 1           # terminal handler of the chain
            li   t0, TIMER_CTRL
            mpst zero, 0(t0)     # stop the timer
            rmr  t0, m11         # restore the interrupted t0
            mexit
        """, shared_mregs=(11,)),
        MRoutine(name="irq_direct", entry=7, source="""
            li   s3, 1           # single-layer handler (parks + restores)
            wmr  m11, t0
            li   t0, TIMER_CTRL
            mpst zero, 0(t0)
            rmr  t0, m11
            mexit
        """, shared_mregs=(11,)),
        MRoutine(name="noop", entry=6, source="mexit\n"),
    ]


@pytest.fixture
def machine():
    return build_nested_metal_machine(routines(), with_caches=False)


def layer(machine, name):
    unit = machine.core.metal
    return unit.layers[unit.layer_index(name)]


class TestLayerManagement:
    def test_initial_layers(self, machine):
        unit = machine.core.metal
        assert [l.name for l in unit.layers] == ["vmm", "os", "app"]

    def test_push_pop(self, machine):
        unit = machine.core.metal
        unit.push_layer("plugin")
        assert unit.layers[-1].name == "plugin"
        assert unit.pop_layer().name == "plugin"

    def test_duplicate_push_rejected(self, machine):
        with pytest.raises(NestedMetalError):
            machine.core.metal.push_layer("os")

    def test_cannot_pop_base(self, machine):
        unit = machine.core.metal
        unit.pop_layer()
        unit.pop_layer()
        with pytest.raises(NestedMetalError):
            unit.pop_layer()

    def test_swap_layer_context_switch(self, machine):
        """The paper's context switch: an OS swaps per-process app tables."""
        unit = machine.core.metal
        entry = unit.image.entry_of("app_icpt")
        process_a = MetalLayer("x")
        process_a.intercept.enable(ICEPT_LW, entry)
        old = unit.swap_layer("app", process_a)
        assert not unit.layers[2].intercept.empty
        unit.swap_layer("app", old)
        assert unit.layers[2].intercept.empty


class TestLayeredInterception:
    def test_higher_layer_intercepts_first(self, machine):
        unit = machine.core.metal
        layer(machine, "os").intercept.enable(ICEPT_LW, unit.image.entry_of("os_icpt"))
        layer(machine, "app").intercept.enable(ICEPT_LW, unit.image.entry_of("app_icpt"))
        machine.load_and_run("""
_start:
    li   t0, 0x3000
    lw   a0, 0(t0)
    halt
""")
        assert machine.reg("t4") == 1   # app (higher) handled it
        assert machine.reg("t5") == 0   # os never saw it (app skipped)

    def test_replay_propagates_downward(self, machine):
        # os replays -> the replayed instruction must go to vmm, not os again
        unit = machine.core.metal
        layer(machine, "os").intercept.enable(ICEPT_LW, unit.image.entry_of("os_replay"))
        layer(machine, "vmm").intercept.enable(ICEPT_LW, unit.image.entry_of("vmm_icpt"))
        machine.load_and_run("""
_start:
    li   t0, 0x3000
    lw   a0, 0(t0)
    halt
""")
        assert machine.reg("t5") == 1   # os handled first
        assert machine.reg("t6") == 1   # replay fell through to vmm

    def test_replay_without_lower_match_executes(self, machine):
        unit = machine.core.metal
        layer(machine, "os").intercept.enable(ICEPT_LW, unit.image.entry_of("os_replay"))
        machine.write_word(0x3000, 0x99)
        machine.load_and_run("""
_start:
    li   t0, 0x3000
    lw   a0, 0(t0)
    halt
""")
        assert machine.reg("t5") == 1
        assert machine.reg("a0") == 0x99  # replayed instruction ran for real

    def test_replay_state_expires_after_pc_moves(self, machine):
        unit = machine.core.metal
        layer(machine, "os").intercept.enable(ICEPT_LW, unit.image.entry_of("os_replay"))
        machine.write_word(0x3000, 7)
        machine.load_and_run("""
_start:
    li   t0, 0x3000
    lw   a0, 0(t0)       # intercept + replay
    lw   a1, 0(t0)       # new PC: intercepted again
    halt
""")
        assert unit.intercept.hits == 2
        assert machine.reg("a0") == 7
        assert machine.reg("a1") == 7


class TestLayeredDelivery:
    def test_interrupt_starts_at_lowest_layer(self, machine):
        unit = machine.core.metal
        cause = Cause.interrupt(0)
        layer(machine, "vmm").delivery.route(cause, unit.image.entry_of("irq_direct"))
        layer(machine, "os").delivery.route(cause, unit.image.entry_of("noop"))
        unit.delivery.interrupts_enabled = True
        machine.timer.compare = 100
        machine.timer.irq_enabled = True
        machine.load_and_run("""
_start:
    li   t0, 400
spin:
    addi t0, t0, -1
    bnez t0, spin
    halt
""", max_instructions=10_000)
        assert machine.reg("s3") == 1  # the vmm's (lowest) handler ran

    def test_interrupt_propagates_upward_via_mraise(self, machine):
        unit = machine.core.metal
        cause = Cause.interrupt(0)
        layer(machine, "vmm").delivery.route(cause, unit.image.entry_of("irq_vmm"))
        layer(machine, "os").delivery.route(cause, unit.image.entry_of("irq_os"))
        unit.delivery.interrupts_enabled = True
        machine.timer.compare = 100
        machine.timer.irq_enabled = True
        machine.load_and_run("""
_start:
    li   t0, 400
spin:
    addi t0, t0, -1
    bnez t0, spin
    halt
""", max_instructions=10_000)
        assert machine.reg("s2") == 1  # vmm saw it first
        assert machine.reg("s3") == 1  # then propagated up to the os

    def test_propagation_past_top_fails(self, machine):
        unit = machine.core.metal
        cause = Cause.interrupt(0)
        layer(machine, "vmm").delivery.route(cause, unit.image.entry_of("irq_vmm"))
        unit.delivery.interrupts_enabled = True
        machine.timer.compare = 50
        machine.timer.irq_enabled = True
        with pytest.raises(NestedMetalError):
            machine.load_and_run("""
_start:
    li   t0, 400
spin:
    addi t0, t0, -1
    bnez t0, spin
    halt
""", max_instructions=10_000)

    def test_exception_goes_to_highest_routing_layer(self, machine):
        unit = machine.core.metal
        # both vmm and os route ILLEGAL; the os (higher) must win
        layer(machine, "vmm").delivery.route(Cause.ILLEGAL_INSTRUCTION,
                                             unit.image.entry_of("irq_vmm"))
        layer(machine, "os").delivery.route(Cause.ILLEGAL_INSTRUCTION,
                                            unit.image.entry_of("noop"))
        assert unit._route_layer(Cause.ILLEGAL_INSTRUCTION) == unit.layer_index("os")

    def test_unrouted_cause_raises(self, machine):
        with pytest.raises(NestedMetalError):
            machine.core.metal.deliver(Cause.ECALL, epc=0)
