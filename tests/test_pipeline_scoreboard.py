"""Direct unit tests of the pipeline scoreboard (hand-computed schedules)."""

import pytest

from repro.cpu.executor import StepInfo
from repro.cpu.pipeline import PipelineTimer
from repro.cpu.timing import TimingModel
from repro.isa.instruction import InstrClass


def step(pc=0, mnemonic="addi", cls=InstrClass.ALU_IMM, fetch=1, mem=0,
         rd=0, reads=(), control=None, is_load=False):
    return StepInfo(
        pc=pc, next_pc=pc + 4, mnemonic=mnemonic, cls=cls,
        fetch_latency=fetch, mem_latency=mem, rd=rd, reads=reads,
        control=control, is_load=is_load,
    )


def timer(**overrides):
    return PipelineTimer(TimingModel(mem_latency=1, **overrides))


class TestSteadyState:
    def test_single_instruction_takes_pipeline_depth(self):
        t = timer()
        t.note(step())
        # IF=1, ID=2, EX=3, MEM=4, WB=5
        assert t.cycles == 5

    def test_back_to_back_alu_one_per_cycle(self):
        t = timer()
        for i in range(10):
            t.note(step(pc=4 * i))
        # depth 5 + 9 more retires
        assert t.cycles == 5 + 9

    def test_forwarding_hides_alu_dependency(self):
        t = timer()
        t.note(step(rd=5))
        t.note(step(reads=(5,)))
        assert t.cycles == 6  # no stall

    def test_load_use_one_bubble(self):
        t = timer()
        t.note(step(mnemonic="lw", cls=InstrClass.LOAD, mem=1, rd=5,
                    is_load=True))
        t.note(step(reads=(5,)))
        assert t.cycles == 7  # one bubble vs the ALU case
        assert t.stall_load_use == 1

    def test_spacer_hides_load_use(self):
        t = timer()
        t.note(step(mnemonic="lw", cls=InstrClass.LOAD, mem=1, rd=5,
                    is_load=True))
        t.note(step(rd=6))
        t.note(step(reads=(5,)))
        assert t.stall_load_use == 0


class TestLatencies:
    def test_fetch_latency_occupies_if(self):
        t = timer()
        t.note(step(fetch=5))
        assert t.cycles == 5 + 4  # IF takes 5 cycles, then 4 more stages

    def test_mem_latency_occupies_mem(self):
        t = timer()
        t.note(step(mnemonic="lw", cls=InstrClass.LOAD, mem=10, rd=5,
                    is_load=True))
        assert t.cycles == 3 + 10 + 1  # IF,ID,EX + MEM(10) + WB

    def test_muldiv_extends_ex(self):
        t = timer(mul_extra=2)
        t.note(step(mnemonic="mul", cls=InstrClass.MULDIV, rd=5))
        assert t.cycles == 5 + 2

    def test_div_uses_div_extra(self):
        t = timer(div_extra=15)
        t.note(step(mnemonic="div", cls=InstrClass.MULDIV, rd=5))
        assert t.cycles == 5 + 15


class TestControlFlow:
    def test_taken_branch_two_bubbles(self):
        t = timer()
        t.note(step(mnemonic="beq", cls=InstrClass.BRANCH, control="branch"))
        t.note(step(pc=100))
        # redirect at EX end (cycle 3): next IF starts at 4 instead of 2
        assert t.stall_control == 2

    def test_jal_one_bubble(self):
        t = timer()
        t.note(step(mnemonic="jal", cls=InstrClass.JAL, control="jal", rd=1))
        t.note(step(pc=100))
        assert t.stall_control == 1

    def test_menter_zero_bubbles_with_replacement(self):
        t = timer()
        t.note(step(mnemonic="menter", cls=InstrClass.METAL, control="menter"))
        t.note(step(pc=0))
        assert t.stall_control == 0

    def test_menter_costs_redirect_without_replacement(self):
        t = timer(decode_replacement=False, transition_redirect=4)
        t.note(step(mnemonic="menter", cls=InstrClass.METAL, control="menter"))
        t.note(step(pc=0))
        assert t.stall_control > 0

    def test_not_taken_branch_free(self):
        t = timer()
        t.note(step(mnemonic="beq", cls=InstrClass.BRANCH, control=None))
        t.note(step(pc=4))
        assert t.stall_control == 0


class TestEvents:
    def test_trap_charges_flush(self):
        t = timer(trap_flush=4)
        t.note(step())
        before = t.cycles
        t.note_trap(metal=False)
        t.note(step(pc=0x80))
        assert t.cycles > before + 1

    def test_metal_delivery_cheaper_than_trap(self):
        a = timer(trap_flush=6, delivery_redirect=2)
        a.note(step())
        a.note_trap(metal=False)
        a.note(step(pc=0x80))
        b = timer(trap_flush=6, delivery_redirect=2)
        b.note(step())
        b.note_trap(metal=True)
        b.note(step(pc=0x80))
        assert b.cycles < a.cycles

    def test_note_event_shifts_everything(self):
        t = timer()
        t.note(step())
        t.note_event(100)
        t.note(step(pc=4))
        assert t.cycles >= 106
