"""MSERVE serving subsystem tests (src/repro/serve).

Covers warm-start bit-identity for all six named workloads, the
admission gate's accept/reject matrix, preemption + cross-shard
migration digest equivalence, the MetricsRegistry multi-machine merge
API, the thread-mode fleet end to end, the asyncio HTTP front end, the
subcommand registry, and the promoted ``repro.parallel`` helpers.
"""

import asyncio
import json

import pytest

from repro.machine.builder import DEFAULT_RAM_BYTES
from repro.parallel import WorkerHost, deterministic_pool_map
from repro.profile.registry import MetricsRegistry, Snapshot
from repro.profile.workloads import WORKLOADS, build_workload
from repro.serve.api import (
    DEFAULT_BUDGET, JobSpec, ServeRejected, architectural_digest,
    digest_hex, parse_request,
)
from repro.serve.fleet import Fleet, FleetConfig
from repro.serve.gate import admit_source, guest_symbols, lint_guest_program
from repro.serve.http import start_server
from repro.serve.shard import ShardWorker

ITERS = 120


def workload_spec(name, job_id="job", iters=ITERS, **kw):
    return parse_request(dict({"workload": name, "iters": iters}, **kw),
                         job_id, DEFAULT_BUDGET)


def source_spec(source, job_id="job", **kw):
    return parse_request(dict({"source": source}, **kw), job_id,
                         DEFAULT_BUDGET)


def run_once(worker, spec, quantum=10_000_000, resume=None, console="",
             budget_left=None, cycles_done=0):
    return worker.execute({
        "spec": spec, "quantum": quantum,
        "budget_left": budget_left if budget_left is not None
        else spec.max_instructions,
        "resume": resume, "console": console, "cycles_done": cycles_done,
    })


# -- warm-start bit-identity -------------------------------------------------

@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_warm_start_digest_matches_fresh_boot(name):
    """Pool-restored runs are bit-identical to fresh-boot runs."""
    spec = workload_spec(name)
    worker = ShardWorker("w0")
    cold = run_once(worker, spec)
    assert cold["kind"] == "done" and cold["error"] is None, cold["error"]
    assert cold["warm"] is False
    warm = run_once(worker, spec)
    assert warm["kind"] == "done" and warm["error"] is None
    assert warm["warm"] is True
    assert warm["result"]["digest"] == cold["result"]["digest"]
    assert warm["result"]["digest_sha"] == cold["result"]["digest_sha"]
    assert warm["result"]["output"] == cold["result"]["output"]

    # And against a machine that has never been pooled at all.
    fresh = build_workload(name, engine="functional")
    program = fresh.assemble(spec.source, base=spec.base)
    fresh.load(program)
    fresh.core.pc = program.symbols.get("_start", spec.base)
    fresh.run(max_instructions=spec.max_instructions)
    digest = architectural_digest(
        fresh, console_text=fresh.console.output.decode("latin-1"))
    assert digest == cold["result"]["digest"]


def test_warm_start_is_faster_on_average():
    """Amortized over a few runs, restore beats boot (asserted loosely
    here; the >=2x acceptance bar is enforced by benchmarks/bench_serve)."""
    spec = workload_spec("mcode_heavy")
    worker = ShardWorker("w0")
    cold = run_once(worker, spec)
    warms = [run_once(worker, spec) for _ in range(3)]
    best_warm = min(r["setup_seconds"] for r in warms)
    assert best_warm < cold["setup_seconds"]


def test_pool_eviction_caps_resident_machines():
    worker = ShardWorker("w0", pool_capacity=2)
    for name in ("tight_loop", "poly_branch", "syscall_heavy"):
        run_once(worker, workload_spec(name))
    assert len(worker._pool) == 2
    assert worker.stats["pool_evictions"] == 1
    # The evicted (least-recent) config boots cold again.
    again = run_once(worker, workload_spec("tight_loop"))
    assert again["warm"] is False


# -- preemption + migration --------------------------------------------------

def test_preempt_resume_digest_equivalence():
    spec = workload_spec("tight_loop")
    worker = ShardWorker("w0")
    whole = run_once(worker, spec)
    assert whole["kind"] == "done"

    part = run_once(worker, spec, quantum=500)
    pieces = 1
    while part["kind"] == "preempted":
        part = run_once(
            worker, spec, quantum=500, resume=part["snapshot"],
            console=part["console"], cycles_done=part["cycles_done"],
            budget_left=spec.max_instructions)
        pieces += 1
    assert part["kind"] == "done" and part["error"] is None
    assert pieces > 1, "quantum too large to exercise preemption"
    assert part["result"]["digest"] == whole["result"]["digest"]


def test_migration_across_shards_digest_equivalence():
    """A preempted capsule resumed on a different worker (the migration
    path) finishes bit-identical to the unpreempted run."""
    spec = workload_spec("syscall_heavy")
    a, b = ShardWorker("a"), ShardWorker("b")
    whole = run_once(a, spec)
    part = run_once(a, spec, quantum=400)
    assert part["kind"] == "preempted"
    hops = 0
    while part["kind"] == "preempted":
        target = b if hops % 2 == 0 else a
        part = run_once(
            target, spec, quantum=400, resume=part["snapshot"],
            console=part["console"], cycles_done=part["cycles_done"],
            budget_left=spec.max_instructions)
        hops += 1
    assert part["kind"] == "done" and part["error"] is None
    assert part["result"]["digest"] == whole["result"]["digest"]
    assert part["result"]["output"] == whole["result"]["output"]
    assert b.stats["resumes"] >= 1


def test_budget_exhaustion_reported():
    spec = source_spec("_start:\nspin:\n    j spin\n",
                       max_instructions=5_000)
    worker = ShardWorker("w0")
    # Quantum larger than the remaining budget: the shard clamps the
    # run to the budget and classifies the non-halt as exhaustion.
    job = run_once(worker, spec, quantum=spec.max_instructions)
    assert job["kind"] == "done"
    assert job["error"]["kind"] == "budget_exhausted"
    # A smaller quantum preempts instead — the budget is not yet spent.
    job = run_once(worker, spec, quantum=2_000)
    assert job["kind"] == "preempted"
    follow = run_once(worker, spec, quantum=5_000, resume=job["snapshot"],
                      console=job["console"],
                      cycles_done=job["cycles_done"],
                      budget_left=spec.max_instructions
                      - job["instructions"])
    assert follow["kind"] == "done"
    assert follow["error"]["kind"] == "budget_exhausted"


# -- the admission gate ------------------------------------------------------

def test_gate_admits_clean_program():
    src = ("_start:\n    li t0, 3\nloop:\n    addi t0, t0, -1\n"
           "    bnez t0, loop\n    halt\n")
    assert admit_source(source_spec(src), DEFAULT_RAM_BYTES) == []


def test_gate_rejects_assembly_error():
    with pytest.raises(ServeRejected) as exc:
        admit_source(source_spec("_start:\n    frobnicate x1\n"),
                     DEFAULT_RAM_BYTES)
    assert exc.value.error["kind"] == "assembly_error"


def test_gate_rejects_escaping_jump():
    with pytest.raises(ServeRejected) as exc:
        admit_source(source_spec("_start:\n    j _start + 0x10000\n"),
                     DEFAULT_RAM_BYTES)
    assert exc.value.error["kind"] == "lint_rejected"
    assert any("escapes" in f["message"]
               for f in exc.value.error["findings"])


def test_gate_rejects_fall_off_the_end():
    with pytest.raises(ServeRejected) as exc:
        admit_source(source_spec("_start:\n    li t0, 1\n"),
                     DEFAULT_RAM_BYTES)
    assert exc.value.error["kind"] == "lint_rejected"


def test_gate_rejects_menter_without_mroutines():
    with pytest.raises(ServeRejected) as exc:
        admit_source(source_spec("_start:\n    menter 0\n    halt\n"),
                     DEFAULT_RAM_BYTES)
    assert exc.value.error["kind"] == "lint_rejected"
    assert any("mroutines" in f["message"]
               for f in exc.value.error["findings"])


def test_gate_allows_data_after_halt():
    """Trailing data words are unreachable — not lint errors."""
    src = "_start:\n    halt\n.word 0xdeadbeef\n.word 0x00000000\n"
    assert admit_source(source_spec(src), DEFAULT_RAM_BYTES) == []


def test_gate_warns_on_no_reachable_halt():
    warnings = admit_source(source_spec("_start:\nspin:\n    j spin\n"),
                            DEFAULT_RAM_BYTES)
    assert len(warnings) == 1
    assert warnings[0]["severity"] == "warn"
    assert "halt" in warnings[0]["message"]


def test_gate_symbols_match_machine_environment():
    """The gate assembles with the exact symbol set shards use, so
    admission and execution can never disagree about a program."""
    from repro.machine.builder import build_metal_machine

    machine = build_metal_machine([], engine="functional",
                                  with_caches=False)
    # User sources execute on a no-mroutine machine: symbol sets must
    # match exactly (mroutine-bearing machines add MR_* labels on top).
    assert dict(machine.symbols) == guest_symbols()
    workload_machine = build_workload("tight_loop", engine="functional")
    for name, value in guest_symbols().items():
        assert workload_machine.symbols[name] == value


def test_lint_guest_program_flags_undecodable_reachable_word():
    from repro.asm.assembler import assemble

    program = assemble("_start:\n    .word 0xffffffff\n    halt\n",
                       base=0x1000, symbols=guest_symbols())
    findings = lint_guest_program(program)
    assert any(f.severity == "error" and "undecodable" in f.message
               for f in findings)


# -- request parsing ---------------------------------------------------------

def test_parse_request_workload_defaults():
    spec = parse_request({"workload": "tight_loop"}, "j1", DEFAULT_BUDGET)
    assert spec.kind == "workload" and spec.name == "tight_loop"
    assert spec.engine == "functional"
    assert spec.max_instructions == DEFAULT_BUDGET
    assert spec.config_key.startswith("workload:tight_loop:")


def test_parse_request_source_config_key_is_content_addressed():
    a = parse_request({"source": "_start:\n halt\n"}, "j1", DEFAULT_BUDGET)
    b = parse_request({"source": "_start:\n halt\n"}, "j2", DEFAULT_BUDGET)
    c = parse_request({"source": "_start:\n nop\n halt\n"}, "j3",
                      DEFAULT_BUDGET)
    assert a.config_key == b.config_key
    assert a.config_key != c.config_key


@pytest.mark.parametrize("body,fragment", [
    ({}, "exactly one"),
    ({"workload": "tight_loop", "source": "x"}, "exactly one"),
    ({"workload": "no_such"}, "unknown workload"),
    ({"workload": "tight_loop", "engine": "quantum"}, "engine"),
    ({"workload": "tight_loop", "max_instructions": 0}, "max_instructions"),
    ({"source": "_start:\n halt\n", "base": 0x1001}, "aligned"),
])
def test_parse_request_rejections(body, fragment):
    with pytest.raises(ServeRejected) as exc:
        parse_request(body, "j", DEFAULT_BUDGET)
    assert fragment in exc.value.error["message"]


# -- MetricsRegistry merge ---------------------------------------------------

def _run_metered(name):
    machine = build_workload(name, engine="functional")
    registry = MetricsRegistry(machine)
    program = machine.assemble(
        __import__("repro.profile.workloads",
                   fromlist=["workload_source"]).workload_source(name, 60),
        base=0x1000)
    machine.load(program)
    machine.core.pc = program.symbols.get("_start", 0x1000)
    before = registry.snapshot()
    machine.run(max_instructions=500_000)
    return registry.snapshot().delta(before)


def test_snapshot_namespaced_prefixes_every_key():
    snap = _run_metered("tight_loop")
    spaced = snap.namespaced("s7")
    assert spaced.counters and all(k.startswith("s7/")
                                   for k in spaced.counters)
    assert all(k.startswith("s7/") for k in spaced.stalls)
    assert all(ns.startswith("s7:") for (ns, _pc) in spaced.traces)
    assert spaced.instret == snap.instret
    assert spaced.cycles == snap.cycles


def test_snapshot_merge_has_no_key_collisions():
    """Two machines' snapshots merge with per-shard namespacing: the
    merged counter total equals the sum, and each shard's contribution
    stays separately addressable."""
    a, b = _run_metered("tight_loop"), _run_metered("tight_loop")
    merged = Snapshot.merge({0: a, 1: b})
    assert merged.instret == a.instret + b.instret
    for key, value in a.counters.items():
        assert merged.counters[f"0/{key}"] == value
        assert merged.counters[f"1/{key}"] == b.counters[key]
    assert len(merged.counters) == len(a.counters) + len(b.counters)


def test_snapshot_add_accumulates_same_machine_deltas():
    a, b = _run_metered("poly_branch"), _run_metered("poly_branch")
    total = a.add(b)
    assert total.instret == a.instret + b.instret
    for key in a.counters:
        assert total.counters[key] == a.counters[key] + b.counters[key]


def test_snapshot_to_from_dict_round_trip():
    snap = _run_metered("chain_trampoline").namespaced("s0")
    clone = Snapshot.from_dict(snap.to_dict())
    assert clone.counters == snap.counters
    assert clone.stalls == snap.stalls
    assert clone.instret == snap.instret and clone.cycles == snap.cycles
    assert set(clone.traces) == set(snap.traces)
    for key, agg in snap.traces.items():
        assert clone.traces[key].hits == agg.hits
        assert clone.traces[key].instructions == agg.instructions


# -- the fleet (thread mode) -------------------------------------------------

@pytest.fixture
def fleet():
    fl = Fleet(FleetConfig(shards=2, mode="thread", quantum=2_000)).start()
    yield fl
    fl.stop()


def test_fleet_end_to_end(fleet):
    futures = {}
    for i, name in enumerate(sorted(WORKLOADS)):
        spec = workload_spec(name, job_id=f"job-{i}")
        futures[name] = fleet.submit(spec)
    for name, fut in futures.items():
        resp = fut.result(timeout=120)
        assert resp["status"] == "ok", (name, resp)
        assert resp["result"]["stop_reason"] == "halt"
    metrics = fleet.metrics()
    assert metrics["requests"]["completed"] == len(WORKLOADS)
    assert metrics["requests"]["failed"] == 0
    assert metrics["throughput"]["instructions"] > 0
    assert metrics["latency"]["count"] == len(WORKLOADS)
    assert metrics["latency"]["p99_seconds"] >= metrics["latency"]["p50_seconds"]
    # The fleet snapshot is namespaced per shard and JSON-clean.
    json.dumps(metrics)
    for key in metrics["fleet_snapshot"]["counters"]:
        shard, _, _rest = key.partition("/")
        assert shard in ("0", "1")


def test_fleet_digest_stable_under_preemption(fleet):
    """The same workload, dispatched repeatedly through a fleet with a
    small quantum (heavy preemption/migration), yields one digest."""
    futs = [fleet.submit(workload_spec("mcode_heavy", job_id=f"m-{i}"))
            for i in range(3)]
    shas = {f.result(timeout=120)["result"]["digest_sha"] for f in futs}
    assert len(shas) == 1
    assert fleet.metrics()["requests"]["preemptions"] > 0


def test_fleet_stop_fails_pending_futures():
    fl = Fleet(FleetConfig(shards=1, mode="thread", quantum=1_000)).start()
    futs = [fl.submit(workload_spec("tight_loop", job_id=f"p-{i}",
                                    iters=50_000))
            for i in range(4)]
    fl.stop()
    for fut in futs:
        resp = fut.result(timeout=30)
        assert resp["status"] in ("ok", "error")
    with pytest.raises(RuntimeError):
        fl.submit(workload_spec("tight_loop"))


# -- the HTTP front end ------------------------------------------------------

async def _http_request(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write((f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                  f"Content-Length: {len(payload)}\r\n"
                  f"Connection: close\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])


def test_http_server_end_to_end():
    async def scenario():
        fl = Fleet(FleetConfig(shards=2, mode="thread",
                               quantum=5_000)).start()
        server = await start_server(fl, port=0)
        host, port = server.sockets[0].getsockname()[:2]
        try:
            status, body = await _http_request(host, port, "GET", "/healthz")
            assert status == 200 and body["ok"]

            status, body = await _http_request(host, port, "GET",
                                               "/workloads")
            assert status == 200
            assert set(body["workloads"]) == set(WORKLOADS)

            runs = await asyncio.gather(
                _http_request(host, port, "POST", "/run",
                              {"workload": "tight_loop", "iters": ITERS}),
                _http_request(host, port, "POST", "/run",
                              {"source": "_start:\n    li a0, 7\n"
                                         "    halt\n",
                               "label": "seven"}),
                _http_request(host, port, "POST", "/run",
                              {"source": "_start:\n    bogus x0\n"}),
                _http_request(host, port, "POST", "/run",
                              {"workload": "no_such"}),
            )
            status, body = runs[0]
            assert status == 200 and body["status"] == "ok"
            status, body = runs[1]
            assert status == 200 and body["status"] == "ok"
            assert body["label"] == "seven"
            status, body = runs[2]
            assert status == 400
            assert body["error"]["kind"] == "assembly_error"
            status, body = runs[3]
            assert status == 400
            assert body["error"]["kind"] == "bad_request"

            status, body = await _http_request(host, port, "GET", "/metrics")
            assert status == 200
            assert body["requests"]["completed"] == 2
            assert body["requests"]["failed"] == 0

            status, body = await _http_request(host, port, "GET", "/nope")
            assert status == 404
            status, body = await _http_request(host, port, "POST",
                                               "/metrics")
            assert status == 405
        finally:
            server.close()
            fl.stop()

    asyncio.run(scenario())


# -- CLI registry ------------------------------------------------------------

def test_main_help_lists_every_subcommand(capsys):
    from repro.__main__ import SUBCOMMANDS, build_parser

    assert set(SUBCOMMANDS) == {"serve", "conformance", "verify",
                                "faultinject", "profile", "lint", "synth"}
    help_text = build_parser().format_help()
    for name in SUBCOMMANDS:
        assert name in help_text


def test_main_dispatches_through_registry(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit) as exc:
        main(["serve", "--help"])
    assert exc.value.code == 0
    assert "--shards" in capsys.readouterr().out


# -- repro.parallel ----------------------------------------------------------

def test_deterministic_pool_map_reexported_from_fault_campaign():
    from repro.fault import campaign

    assert campaign.deterministic_pool_map is deterministic_pool_map


def test_deterministic_pool_map_inline_and_order():
    cells = list(range(17))
    assert deterministic_pool_map(_square, cells, workers=1) == \
        [c * c for c in cells]


def _square(x):
    return x * x


def test_worker_host_thread_mode_round_trip():
    host = WorkerHost(0, _echo_loop, mode="thread")
    host.start()
    try:
        host.send({"value": 41})
        assert host.responses.get(timeout=10) == {"value": 42}
    finally:
        host.stop()
    assert not host.alive


def _echo_loop(worker_id, requests, responses):
    while True:
        message = requests.get()
        if message == WorkerHost.STOP:
            return
        responses.put({"value": message["value"] + 1})
