"""§3.5 virtualization tests: trap-and-emulate of privileged instructions."""

import pytest

from repro import Cause, build_metal_machine
from repro.mcode.privilege import make_kernel_user_routines
from repro.mcode.virt import GUEST_KERNEL_LEVEL, make_virt_routines

FAULT_ENTRY = 0x1040
PARTITION_BASE = 0x200000
PARTITION_SIZE = 0x10000


def virt_machine():
    routines = (make_kernel_user_routines(0x2E00, FAULT_ENTRY)
                + make_virt_routines(FAULT_ENTRY))
    return build_metal_machine(routines, with_caches=False)


BOOT = f"""
_start:
    j    host
.org {FAULT_ENTRY:#x}
kfault:
    li   s11, 1              # host fault entry (genuine violations)
    halt
host:
    li   a0, {PARTITION_BASE:#x}
    li   a1, {PARTITION_SIZE:#x}
    menter MR_VIRT_CREATE
    li   ra, guest
    menter MR_VIRT_ENTER
host_back:
    li   s10, 1              # control returned to the host
    halt
"""


class TestTrapAndEmulate:
    def test_guest_tlb_write_is_offset_into_partition(self):
        m = virt_machine()
        m.load_and_run(BOOT + """
guest:
    menter MR_PRIV_GET
    mv   s0, a0              # level inside the guest
    # guest maps its gVA 0x400000 -> gPA 0x3000 (guest-physical!)
    li   t0, 0x400000
    li   t1, 0x3000 + 3      # gPA | R | W
    mtlbw t0, t1             # traps -> virt_emul -> shadow entry
    menter MR_VIRT_EXIT
""", base=0x1000)
        assert m.reg("s0") == GUEST_KERNEL_LEVEL
        assert m.reg("s10") == 1         # returned to host cleanly
        assert m.reg("s11") == 0         # no genuine faults
        entry = m.core.tlb.lookup(0x400000 >> 12)
        assert entry is not None
        # the shadow entry points into the host partition
        assert entry.ppn == (PARTITION_BASE + 0x3000) >> 12
        # ILLEGAL was delivered exactly once and emulated
        assert m.core.metal.stats.deliveries.get(1) == 1

    def test_guest_cannot_escape_partition(self):
        m = virt_machine()
        m.load_and_run(BOOT + f"""
guest:
    # gPA beyond the partition: must be refused, not installed
    li   t0, 0x500000
    li   t1, {PARTITION_SIZE:#x} + 0x1000 + 3
    mtlbw t0, t1
    menter MR_VIRT_EXIT
""", base=0x1000)
        assert m.reg("s11") == 1         # forwarded as a violation
        assert m.core.tlb.lookup(0x500000 >> 12) is None

    def test_guest_tlb_flush_emulated(self):
        from repro.mmu.types import TlbEntry

        m = virt_machine()
        m.core.tlb.insert(TlbEntry(vpn=9, ppn=9, perms=1))
        m.load_and_run(BOOT + """
guest:
    mtlbf                    # emulated flush
    menter MR_VIRT_EXIT
""", base=0x1000)
        assert m.reg("s10") == 1
        assert len(m.core.tlb) == 0

    def test_emulation_counter(self):
        from repro.mcode.virt import OFF_EMUL_COUNT

        m = virt_machine()
        m.load_and_run(BOOT + """
guest:
    li   t0, 0x400000
    li   t1, 0x1000 + 1
    mtlbw t0, t1
    li   t0, 0x401000
    li   t1, 0x2000 + 1
    mtlbw t0, t1
    mtlbf
    menter MR_VIRT_EXIT
""", base=0x1000)
        base = m.metal_image.data_offset_of("virt_create")
        count = m.core.metal.mram.load_word(base + OFF_EMUL_COUNT)
        assert count == 3

    def test_illegal_outside_guest_forwards_to_host(self):
        m = virt_machine()
        m.load_and_run(f"""
_start:
    j    host
.org {FAULT_ENTRY:#x}
kfault:
    li   s11, 1
    halt
host:
    li   a0, {PARTITION_BASE:#x}
    li   a1, {PARTITION_SIZE:#x}
    menter MR_VIRT_CREATE
    mtlbw t0, t1             # host (level 0) issuing it is NOT emulated
    halt
""", base=0x1000)
        assert m.reg("s11") == 1
        assert m.core.tlb.lookup(0) is None

    def test_non_tlb_privileged_op_forwards(self):
        m = virt_machine()
        m.load_and_run(BOOT + """
guest:
    mpkr t0                  # privileged, but not virtualized
    menter MR_VIRT_EXIT
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_virt_enter_requires_host(self):
        m = virt_machine()
        m.route_cause(Cause.PRIVILEGE, "priv_fault")
        m.load_and_run(BOOT + """
guest:
    li   ra, guest           # guest trying to virt_enter again
    menter MR_VIRT_ENTER
    menter MR_VIRT_EXIT
""", base=0x1000)
        assert m.reg("s11") == 1

    def test_guest_runs_under_its_shadow_mappings(self):
        """End to end: the guest maps a page, the host pre-wires the shared
        code/timer pages, paging goes on, and the guest's store lands in
        the host partition."""
        from repro.mmu.types import TlbEntry

        m = virt_machine()
        # Host wires identity mappings for the code page (host-side boot
        # action; the host owns the real TLB).
        m.core.tlb.insert(TlbEntry(vpn=1, ppn=1, perms=7, global_=True))
        m.load_and_run(BOOT + """
guest:
    li   t0, 0x400000
    li   t1, 0x3000 + 3      # gPA 0x3000, R|W
    mtlbw t0, t1             # shadow entry via the hypervisor
    menter MR_VIRT_EXIT
""", base=0x1000)
        assert m.reg("s10") == 1
        # Now the host turns paging on and pokes through the guest mapping
        # (host-side check of the shadow entry's effect).
        m.core.tlb.enabled = True
        m.core.halted = False
        m.load_and_run("""
_start:
    li   t0, 0x400000
    li   t1, 0x5A5A
    sw   t1, 0(t0)
    lw   a0, 0(t0)
    halt
""", base=0x1000)
        assert m.reg("a0") == 0x5A5A
        assert m.read_word(PARTITION_BASE + 0x3000) == 0x5A5A
