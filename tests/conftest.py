"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import MRoutine, build_metal_machine, build_trap_machine


def pytest_addoption(parser):
    parser.addoption(
        "--seeds", type=int, default=200,
        help="number of seeded cases for the superblock differential "
             "fuzz harness (tests/test_superblock_differential.py)",
    )


@pytest.fixture
def noop_routine():
    """An mroutine that immediately returns."""
    return MRoutine(name="noop", entry=0, source="mexit\n")


@pytest.fixture
def metal_machine(noop_routine):
    """A Metal machine with a single no-op mroutine, no caches."""
    return build_metal_machine([noop_routine], with_caches=False)


@pytest.fixture
def trap_machine():
    """A plain trap-baseline machine, no caches."""
    return build_trap_machine(with_caches=False)


def run_asm(machine, source, base=0x1000, max_instructions=1_000_000):
    """Assemble, load and run to halt; returns the machine."""
    machine.load_and_run(source, base=base, max_instructions=max_instructions)
    return machine
