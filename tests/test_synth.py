"""MSYNTH tests: candidate mining safety rules, generated-routine
verification, the loader's append path, guest rewriting, end-to-end
digest parity + speedup, and the five-way lockstep differential with
synthesis enabled.

The load-bearing properties:

* the miner only fuses regions it can prove safe from the static image
  (plain instructions, no external entry into the interior, no ``jalr``
  anywhere) and ranks them as a pure function of the profile;
* generated routines pass MAS (``MRAM_ONLY``, pure dispatch) and the
  MCONF independent decode oracle;
* appending to a live image refreshes everything downstream — facts,
  nonstore ranges, the tcache's mram translations — and commits nothing
  on failure;
* a rewritten guest is bit-identical to baseline everywhere outside the
  patched bytes, across every execution variant MCONF locksteps.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro import build_metal_machine
from repro.asm import assemble
from repro.conformance.campaign import VARIANTS, machine_state
from repro.conformance.crosscheck import check_words
from repro.errors import MroutineLoadError
from repro.metal.mroutine import MRoutine
from repro.profile.sink import TraceAggregate
from repro.profile.workloads import WORKLOADS, workload_source
from repro.synth.generate import free_entry, free_mreg, generate_routine
from repro.synth.mine import mine_candidates
from repro.synth.pipeline import (
    architectural_digest, generated_routines, profile_aggregates,
    synthesize_workload,
)
from repro.synth.rewrite import rewrite_program

BASE = 0x1000

#: Counted loop with a 5-instruction plain body: one loop candidate.
LOOP_SRC = """
_start:
    addi t0, zero, 100
loop:
    addi t1, t1, 1
    xor  t2, t1, t0
    slli t3, t1, 2
    add  t4, t2, t3
    addi t0, t0, -1
    bnez t0, loop
    halt
"""

#: Straight-line plain prefix ended by a store: one run candidate.
RUN_SRC = """
_start:
    addi t1, zero, 7
    slli t2, t1, 4
    xor  t3, t2, t1
    add  t4, t3, t2
    or   t5, t4, t1
    sw   t5, 0(zero)
    halt
"""


def _agg(pc, hits=100, instrs=600):
    return TraceAggregate("mem", pc, hits, instrs, 0, instrs)


def _mine(source, aggs, **kwargs):
    program = assemble(source, base=BASE)
    words = program.words()
    entry_pc = program.symbols.get("_start", BASE)
    kwargs.setdefault("entry_pc", entry_pc)
    return words, mine_candidates(words, BASE, aggs, **kwargs)


class TestMiner:
    def test_loop_candidate_at_hot_head(self):
        words, cands = _mine(LOOP_SRC, [_agg(BASE + 4)])
        assert len(cands) == 1
        cand = cands[0]
        assert cand.kind == "loop"
        assert cand.head_pc == BASE + 4
        assert cand.length == 6                # 5-word body + back-branch
        assert cand.end_pc == BASE + 4 + 24

    def test_run_candidate_stops_at_store(self):
        words, cands = _mine(RUN_SRC, [_agg(BASE)])
        assert len(cands) == 1
        cand = cands[0]
        assert cand.kind == "run"
        assert cand.head_pc == BASE
        assert cand.length == 5                # sw not fusable

    def test_short_run_rejected(self):
        words, cands = _mine(RUN_SRC, [_agg(BASE)], min_run=6)
        assert cands == []

    def test_jalr_poisons_whole_program(self):
        src = LOOP_SRC.replace("    halt", "    jalr zero, 0(ra)\n    halt")
        _, cands = _mine(src, [_agg(BASE + 4)])
        assert cands == []

    def test_external_target_into_interior_rejected(self):
        # A branch elsewhere jumps into the loop body: fusing the whole
        # region would skip that entry path.
        src = """
_start:
    addi t0, zero, 10
    beq  zero, zero, mid
loop:
    addi t1, t1, 1
mid:
    addi t2, t2, 1
    addi t0, t0, -1
    bnez t0, loop
    halt
"""
        _, cands = _mine(src, [_agg(BASE + 8)])
        assert cands == []

    def test_targeting_the_head_is_allowed(self):
        # The loop's own back-branch targets the head — that must not
        # disqualify the region (the patch at the head performs it all).
        _, cands = _mine(LOOP_SRC, [_agg(BASE + 4)])
        assert cands and cands[0].head_pc == BASE + 4

    def test_entry_pc_in_interior_rejected(self):
        _, cands = _mine(RUN_SRC, [_agg(BASE)], entry_pc=BASE + 8)
        assert cands == []

    def test_overlapping_candidates_keep_best_score(self):
        # Two hot heads inside the same loop: the higher-scoring region
        # wins, the overlapping one is dropped.
        aggs = [_agg(BASE + 4, hits=100, instrs=600),
                _agg(BASE + 8, hits=90, instrs=300)]
        _, cands = _mine(LOOP_SRC, aggs, min_run=3)
        assert len(cands) == 1
        assert cands[0].head_pc == BASE + 4

    def test_ranking_is_pure_function_of_profile(self):
        aggs = [_agg(BASE + 4), _agg(BASE)]
        _, fwd = _mine(LOOP_SRC, aggs)
        _, rev = _mine(LOOP_SRC, list(reversed(aggs)))
        assert fwd == rev

    def test_mram_namespace_ignored(self):
        _, cands = _mine(
            LOOP_SRC,
            [TraceAggregate("mram", BASE + 4, 100, 600, 0, 600)])
        assert cands == []


class TestGenerate:
    def _setup(self):
        machine = build_metal_machine([], with_caches=False)
        words, cands = _mine(LOOP_SRC, [_agg(BASE + 4)])
        return machine, words, cands[0]

    def test_generated_loop_routine_verifies(self):
        machine, words, cand = self._setup()
        image = machine.metal_image
        routine = generate_routine(cand, image, words, BASE)
        assert routine.name == f"synth_{cand.head_pc:x}"
        assert routine.entry == free_entry(image) == 0
        assert routine.mregs           # counter mreg allocated
        machine.append_mroutines([routine])
        assert routine.facts.pure_dispatch
        assert routine.facts.purity.value == "mram-only"
        # Provenance words: counter, head pc, region words, kind code.
        assert routine.data_init == (0, cand.head_pc, cand.length, 1)

    def test_counter_disabled_drops_mreg_and_stays_pure(self):
        machine, words, cand = self._setup()
        routine = generate_routine(cand, machine.metal_image, words, BASE,
                                   counter=False)
        assert routine.mregs == ()
        assert "mld" not in routine.source
        machine.append_mroutines([routine])
        assert routine.facts.pure_dispatch

    def test_synthesized_words_pass_decode_oracle(self):
        # Every word MSYNTH emits must decode identically under the
        # MCONF independent oracle — fused code cannot smuggle in an
        # encoding the primary decoder and oracle disagree on.
        machine, words, cand = self._setup()
        routine = generate_routine(cand, machine.metal_image, words, BASE)
        machine.append_mroutines([routine])
        assert check_words(routine.code_words) == []

    def test_free_mreg_skips_owned_and_shared(self):
        shape = [
            MRoutine(name="a", entry=0, source="mexit\n", mregs=(0, 1)),
            MRoutine(name="b", entry=1, source="mexit\n", shared_mregs=(2,)),
        ]
        machine = build_metal_machine(shape, with_caches=False)
        assert free_mreg(machine.metal_image) == 3
        assert free_entry(machine.metal_image) == 2


class TestAppend:
    def _routine(self, name="late", entry=1, source="mexit\n", **kwargs):
        return MRoutine(name=name, entry=entry, source=source, **kwargs)

    def test_append_refreshes_facts_and_ranges(self):
        base = MRoutine(name="first", entry=0, source="mexit\n")
        machine = build_metal_machine([base], with_caches=False)
        image = machine.metal_image
        before_ranges = image.nonstore_code_ranges()
        version = image.mram.code_version
        added = machine.append_mroutines([self._routine(source="""
    addi t0, t0, 1
    mexit
""")])
        assert image.mram.code_version > version
        assert "late" in image.analysis
        assert added[0].facts is not None
        assert len(image.nonstore_code_ranges()) == len(before_ranges) + 1
        assert machine.symbols["MR_LATE"] == 1

    def test_appended_routine_executes_after_prior_compile(self):
        # Warm the tcache on the original image first, then append and
        # call the new routine: the lazy code_version check must drop
        # the stale mram translations and pick up the new facts.
        base = MRoutine(name="first", entry=0, source="mexit\n")
        machine = build_metal_machine([base], with_caches=False)
        machine.load_and_run("_start:\n    menter MR_FIRST\n    halt\n")
        machine.append_mroutines([self._routine(source="""
    addi s5, s5, 77
    mexit
""")])
        machine.core.halted = False
        machine.load_and_run("_start:\n    menter MR_LATE\n    halt\n")
        assert machine.core.regs[21] == 77     # s5

    def test_failed_append_commits_nothing(self):
        base = MRoutine(name="first", entry=0, source="mexit\n")
        machine = build_metal_machine([base], with_caches=False)
        image = machine.metal_image
        snap = (dict(image.routines), dict(image.symbols),
                dict(image.analysis), image.code_used_bytes,
                image.data_used_bytes, bytes(image.mram.code),
                image.mram.code_version)
        bad = self._routine(source="    menter MR_NOWHERE\n    mexit\n")
        with pytest.raises(MroutineLoadError):
            machine.append_mroutines([bad])
        assert (dict(image.routines), dict(image.symbols),
                dict(image.analysis), image.code_used_bytes,
                image.data_used_bytes, bytes(image.mram.code),
                image.mram.code_version) == snap

    def test_duplicate_entry_rejected(self):
        base = MRoutine(name="first", entry=0, source="mexit\n")
        machine = build_metal_machine([base], with_caches=False)
        with pytest.raises(MroutineLoadError):
            machine.append_mroutines([self._routine(entry=0)])


class TestRewrite:
    def _patched(self, force_trampoline=False):
        words, cands = _mine(LOOP_SRC, [_agg(BASE + 4)])
        program = assemble(LOOP_SRC, base=BASE)
        patch = rewrite_program(program, cands[0], entry=3,
                                force_trampoline=force_trampoline)
        return program, cands[0], patch

    def test_inline_patch_is_length_preserving(self):
        baseline = assemble(LOOP_SRC, base=BASE)
        program, cand, patch = self._patched()
        assert patch.style == "inline"
        assert len(program.data) == len(baseline.data)
        assert patch.masked_ranges == ((cand.head_pc, cand.end_pc),)
        # Outside the region the image is untouched.
        lo, hi = cand.head_pc - BASE, cand.end_pc - BASE
        assert program.data[:lo] == baseline.data[:lo]
        assert program.data[hi:] == baseline.data[hi:]

    def test_trampoline_patch_appends_stub(self):
        baseline = assemble(LOOP_SRC, base=BASE)
        program, cand, patch = self._patched(force_trampoline=True)
        assert patch.style == "trampoline"
        assert len(program.data) == len(baseline.data) + 8
        assert patch.masked_ranges == (
            (cand.head_pc, cand.end_pc),
            (baseline.end, baseline.end + 8),
        )
        # Only the head word of the region is rewritten.
        lo = cand.head_pc - BASE
        assert program.data[lo + 4:len(baseline.data)] == \
            baseline.data[lo + 4:]

    def test_region_outside_image_rejected(self):
        words, cands = _mine(LOOP_SRC, [_agg(BASE + 4)])
        program = assemble("_start:\n    halt\n", base=BASE)
        with pytest.raises(ValueError):
            rewrite_program(program, cands[0], entry=0)


class TestPipeline:
    @pytest.mark.parametrize("workload", ["tight_loop", "hash_mix"])
    def test_end_to_end_speedup_and_parity(self, workload):
        report = synthesize_workload(workload, iters=2_000)
        assert report["candidates"], "no fusable candidate emitted"
        assert report["digest"]["match"]
        assert report["lint_clean"]
        assert report["speedup"] >= 1.15
        for cand in report["candidates"]:
            assert cand["oracle_disagreements"] == 0
            assert cand["hw_delta"]["cells"] > 0
            assert cand["hw_delta"]["wires"] > 0
        top = report["candidates"][0]
        assert top["kind"] == "loop"
        assert top["purity"] == "mram-only"
        assert top["invocations"] and top["invocations"] >= 1

    def test_trampoline_style_keeps_parity(self):
        report = synthesize_workload("tight_loop", iters=1_000,
                                     force_trampoline=True)
        assert report["candidates"]
        assert all(c["style"] == "trampoline" for c in report["candidates"])
        assert report["digest"]["match"]

    def test_no_counter_mode(self):
        report = synthesize_workload("tight_loop", iters=1_000,
                                     counter=False)
        assert report["candidates"]
        assert all(c["invocations"] is None for c in report["candidates"])
        assert report["digest"]["match"]

    def test_unfusable_workload_reports_empty(self):
        # Every hot trace of syscall_heavy runs through an ecall: no
        # plain region long enough to fuse.
        report = synthesize_workload("syscall_heavy", iters=200)
        assert report["candidates"] == []
        assert report["digest"]["match"]

    def test_generated_routines_standalone_image(self):
        routines = generated_routines(iters=300)
        assert len(routines) >= 2
        assert len({r.name for r in routines}) == len(routines)
        assert [r.entry for r in routines] == list(range(len(routines)))
        # The standalone set loads into a fresh image (what the MAS
        # lint registry's "synth" app does).
        machine = build_metal_machine(routines, with_caches=False)
        assert set(machine.metal_image.analysis) == {r.name
                                                     for r in routines}


class TestLockstepWithSynthesis:
    """The MCONF five-way differential, with MSYNTH enabled: every
    execution variant runs the same rewritten guest and must agree on
    all architecturally visible state — and the masked digest must
    equal an unpatched baseline's."""

    @staticmethod
    def _variant(name, routines, setup):
        machine = build_metal_machine(
            list(routines), engine="functional", with_caches=False,
            tcache=(name != "interp"))
        if setup is not None:
            setup(machine)
        if name == "tcache":
            machine.set_tcache_chaining(False)
        elif name == "profiled":
            machine.set_profiling(True)
        elif name == "jit":
            machine.set_tcache_jit(True)
            machine.sim.tcache.jit_threshold = 1
        return machine

    def test_five_way_differential_25_seeds(self):
        for seed in range(25):
            name = ("tight_loop", "hash_mix")[seed % 2]
            workload = WORKLOADS[name]
            iters = 200 + seed * 17
            source = workload_source(name, iters)
            aggregates = profile_aggregates(source, workload.routines,
                                            workload.setup)
            scout = self._variant("chained", workload.routines,
                                  workload.setup)
            program = scout.assemble(source, base=BASE)
            words = program.words()
            entry_pc = program.symbols.get("_start", BASE)
            cands = mine_candidates(words, BASE, aggregates, top=2,
                                    entry_pc=entry_pc)
            assert cands, f"seed {seed}: no candidate on {name}"

            baseline = self._variant("chained", workload.routines,
                                     workload.setup)
            baseline.load_and_run(source, base=BASE)

            states, digests, masked = [], [], []
            for vname in VARIANTS:
                m = self._variant(vname, workload.routines, workload.setup)
                routines = [generate_routine(c, m.metal_image, words, BASE)
                            for c in cands]
                m.append_mroutines(routines)
                patched = m.assemble(source, base=BASE)
                masked = []
                for cand, routine in zip(cands, routines):
                    patch = rewrite_program(patched, cand, routine.entry)
                    masked.extend(patch.masked_ranges)
                m.load(patched)
                m.core.pc = entry_pc
                m.run(max_instructions=500_000, raise_on_limit=False)
                assert m.core.halted, f"seed {seed}: {vname} did not halt"
                states.append((vname, machine_state(m)))
                digests.append(architectural_digest(m, masked))

            first_name, first = states[0]
            for vname, state in states[1:]:
                assert state == first, (
                    f"seed {seed}: {vname} diverged from {first_name}")
            base_digest = architectural_digest(baseline, masked)
            for (vname, _), digest in zip(states, digests):
                assert digest == base_digest, (
                    f"seed {seed}: {vname} digest != unpatched baseline")


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", "synth", *args],
            capture_output=True, text=True, timeout=300,
        )

    def test_list(self):
        result = self._run("--list")
        assert result.returncode == 0
        assert "hash_mix" in result.stdout

    def test_workload_report_and_json(self, tmp_path):
        out = tmp_path / "synth.json"
        result = self._run("tight_loop", "--iters", "1500",
                           "--json", str(out))
        assert result.returncode == 0, result.stderr
        assert "speedup" in result.stdout
        assert "MATCH" in result.stdout
        payload = json.loads(out.read_text())
        assert payload["digest"]["match"]
        assert payload["candidates"]

    def test_smoke_gate(self, tmp_path):
        out = tmp_path / "smoke.json"
        result = self._run("--smoke", "--iters", "800", "--json", str(out))
        assert result.returncode == 0, result.stderr
        assert "smoke: ok" in result.stdout
        payload = json.loads(out.read_text())
        assert payload["tool"] == "msynth-smoke"
        assert payload["ok"] is True
        assert len(payload["reports"]) == 2

    def test_source_file(self, tmp_path):
        path = tmp_path / "prog.s"
        path.write_text(LOOP_SRC)
        result = self._run(str(path))
        assert result.returncode == 0, result.stderr
        assert "synth_1004" in result.stdout

    def test_missing_target(self):
        result = self._run()
        assert result.returncode == 2
