"""§3.3 application tests: interception-driven STM (TL2-lite)."""

import pytest

from repro import build_metal_machine
from repro.mcode.stm import RS_MAX, WS_MAX, StmHost, make_stm_routines

CLOCK = 0x20000
LOCKS = 0x21000


@pytest.fixture
def stm():
    m = build_metal_machine(make_stm_routines(CLOCK, LOCKS), with_caches=False)
    return m, StmHost(m, CLOCK, LOCKS)


TX_PROLOGUE = """
_start:
    li   s0, 0               # attempt counter
retry:
    addi s0, s0, 1
    li   a0, onabort
    menter MR_TSTART
"""


class TestCommitPath:
    def test_simple_increment(self, stm):
        m, host = stm
        m.write_word(0x30000, 41)
        m.load_and_run(TX_PROLOGUE + """
    li   t0, 0x30000
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    menter MR_TCOMMIT
    beqz a0, retry
    j    done
onabort:
    j    retry
done:
    li   t0, 0x30000
    lw   a1, 0(t0)
    halt
""")
        assert m.reg("a1") == 42
        assert host.commits == 1
        assert host.aborts == 0

    def test_writes_invisible_until_commit(self, stm):
        m, host = stm
        m.write_word(0x30000, 1)
        m.load_and_run(TX_PROLOGUE + """
    li   t0, 0x30000
    li   t1, 99
    sw   t1, 0(t0)           # buffered, not yet in memory
    menter MR_TABORT
    li   t0, 0x30000
    lw   a1, 0(t0)           # after abort: original value
    j    done
onabort:
    j    done
done:
    halt
""")
        assert m.reg("a1") == 1
        assert host.aborts == 1
        assert host.commits == 0

    def test_read_your_writes(self, stm):
        m, host = stm
        m.write_word(0x30000, 5)
        m.load_and_run(TX_PROLOGUE + """
    li   t0, 0x30000
    li   t1, 77
    sw   t1, 0(t0)
    lw   a1, 0(t0)           # must see the buffered 77
    mv   s1, a1
    menter MR_TCOMMIT
    j    done
onabort:
    j    done
done:
    halt
""")
        assert m.reg("s1") == 77
        assert host.commits == 1

    def test_last_write_wins(self, stm):
        m, host = stm
        m.load_and_run(TX_PROLOGUE + """
    li   t0, 0x30000
    li   t1, 1
    sw   t1, 0(t0)
    li   t1, 2
    sw   t1, 0(t0)
    menter MR_TCOMMIT
    j    done
onabort:
    j    retry
done:
    halt
""")
        assert m.read_word(0x30000) == 2

    def test_multi_location_atomicity(self, stm):
        m, host = stm
        m.write_word(0x30000, 10)
        m.write_word(0x30004, 20)
        m.load_and_run(TX_PROLOGUE + """
    li   t0, 0x30000
    lw   t1, 0(t0)
    lw   t2, 4(t0)
    add  t3, t1, t2
    sw   t3, 0(t0)
    sw   t3, 4(t0)
    menter MR_TCOMMIT
    j    done
onabort:
    j    retry
done:
    halt
""")
        assert m.read_word(0x30000) == 30
        assert m.read_word(0x30004) == 30
        assert host.commits == 1

    def test_interception_off_after_commit(self, stm):
        m, _ = stm
        m.load_and_run(TX_PROLOGUE + """
    li   t0, 0x30000
    li   t1, 7
    sw   t1, 0(t0)
    menter MR_TCOMMIT
    mv   s1, a0
    # plain (non-transactional) accesses after commit.  tcommit clobbers
    # t0-t5 (explicit-call ABI), so reload the address.
    li   t0, 0x30000
    li   t1, 8
    sw   t1, 0(t0)
    lw   a1, 0(t0)
    j    done
onabort:
    j    retry
done:
    halt
""")
        hits_after = m.core.metal.intercept.hits
        assert m.reg("a1") == 8
        assert m.core.metal.intercept.empty
        assert hits_after == 1  # only the in-transaction store


class TestConflicts:
    def test_commit_validation_conflict(self, stm):
        m, host = stm
        m.write_word(0x30000, 1)
        # A "remote core" bumps the stripe version after the tx snapshot:
        # run the tx up to just before tcommit, then inject, then resume.
        prog = m.assemble(TX_PROLOGUE + """
    li   t0, 0x30000
    lw   t1, 0(t0)
pause:
    nop                      # host injects the remote write here
    addi t1, t1, 1
    sw   t1, 0(t0)
    menter MR_TCOMMIT
    beqz a0, retry
    j    done
onabort:
    j    retry
done:
    li   t0, 0x30000
    lw   a1, 0(t0)
    halt
""", base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        pause = prog.symbols["pause"]
        first = True
        # Step until the first arrival at `pause`, inject, then run on.
        while m.core.pc != pause or m.core.in_metal:
            m.sim.step()
        host.remote_write(0x30000, 100)
        m.run(max_instructions=1_000_000)
        assert host.aborts >= 1
        assert host.commits == 1
        assert m.reg("a1") == 101  # retried on top of the remote value

    def test_read_conflict_aborts_inline(self, stm):
        m, host = stm
        m.write_word(0x30000, 1)
        m.write_word(0x30004, 2)
        prog = m.assemble(TX_PROLOGUE + """
    li   t0, 0x30000
    lw   t1, 0(t0)           # read-set entry for 0x30000
pause:
    nop
    lw   t2, 0(t0)           # version now > rv -> inline abort
    menter MR_TCOMMIT
    j    done
onabort:
    li   s5, 1               # abort continuation reached
    j    done
done:
    halt
""", base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        pause = prog.symbols["pause"]
        while m.core.pc != pause or m.core.in_metal:
            m.sim.step()
        host.remote_write(0x30000, 50)
        m.run(max_instructions=100_000)
        assert m.reg("s5") == 1
        assert host.aborts == 1


class TestCapacity:
    def test_write_set_overflow_aborts(self, stm):
        m, host = stm
        m.load_and_run(TX_PROLOGUE + f"""
    li   t0, 0x30000
    li   t2, {WS_MAX + 1}
fill:
    sw   t2, 0(t0)
    addi t0, t0, 4
    addi t2, t2, -1
    bnez t2, fill
    menter MR_TCOMMIT
    j    done
onabort:
    li   s5, 1
    j    done
done:
    halt
""")
        assert m.reg("s5") == 1
        assert host.aborts == 1

    def test_read_set_overflow_aborts(self, stm):
        m, host = stm
        m.load_and_run(TX_PROLOGUE + f"""
    li   t0, 0x30000
    li   t2, {RS_MAX + 1}
fill:
    lw   t3, 0(t0)
    addi t0, t0, 4
    addi t2, t2, -1
    bnez t2, fill
    menter MR_TCOMMIT
    j    done
onabort:
    li   s5, 1
    j    done
done:
    halt
""")
        assert m.reg("s5") == 1
        assert host.aborts == 1

    def test_max_capacity_commit_succeeds(self, stm):
        m, host = stm
        m.load_and_run(TX_PROLOGUE + f"""
    li   t0, 0x30000
    li   t2, {WS_MAX}
fill:
    sw   t2, 0(t0)
    addi t0, t0, 4
    addi t2, t2, -1
    bnez t2, fill
    menter MR_TCOMMIT
    mv   s1, a0
    j    done
onabort:
    j    done
done:
    halt
""", max_instructions=2_000_000)
        assert m.reg("s1") == 1
        assert host.commits == 1
        # all words landed
        assert m.read_word(0x30000) == WS_MAX
        assert m.read_word(0x30000 + 4 * (WS_MAX - 1)) == 1
