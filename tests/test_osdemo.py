"""MetalOS integration tests: identical syscall semantics on both kernels."""

import pytest

from repro.osdemo.boot import boot_metal_os, boot_trap_os
from repro.osdemo.userprog import null_syscall_loop, putc_loop, syscall_metal, syscall_trap


class TestBothKernels:
    @pytest.mark.parametrize("metal", [True, False], ids=["metal", "trap"])
    def test_hello(self, metal):
        m = (boot_metal_os if metal else boot_trap_os)(
            putc_loop("hi!", metal=metal)
        )
        m.run(max_instructions=100_000)
        assert m.output == "hi!"

    @pytest.mark.parametrize("metal", [True, False], ids=["metal", "trap"])
    def test_getpid(self, metal):
        call = syscall_metal if metal else syscall_trap
        user = f"_user:\n{call('SYS_GETPID')}    mv s0, a0\n{call('SYS_EXIT')}"
        m = (boot_metal_os if metal else boot_trap_os)(user)
        m.run(max_instructions=100_000)
        assert m.reg("s0") == 7

    @pytest.mark.parametrize("metal", [True, False], ids=["metal", "trap"])
    def test_time_is_monotonic(self, metal):
        call = syscall_metal if metal else syscall_trap
        user = (
            f"_user:\n{call('SYS_TIME')}    mv s0, a0\n"
            f"{call('SYS_TIME')}    mv s1, a0\n{call('SYS_EXIT')}"
        )
        m = (boot_metal_os if metal else boot_trap_os)(user)
        m.run(max_instructions=100_000)
        assert m.reg("s1") > m.reg("s0") > 0

    @pytest.mark.parametrize("metal", [True, False], ids=["metal", "trap"])
    def test_null_syscall_loop_completes(self, metal):
        m = (boot_metal_os if metal else boot_trap_os)(
            null_syscall_loop(100, metal=metal)
        )
        res = m.run(max_instructions=1_000_000)
        assert res.halted


class TestComparativeCost:
    def test_metal_syscalls_cheaper_than_trap(self):
        """The headline of §3.1: mroutine transitions beat trap transitions."""
        results = {}
        for metal in (True, False):
            m = (boot_metal_os if metal else boot_trap_os)(
                null_syscall_loop(500, metal=metal), with_uli=False,
            ) if metal else boot_trap_os(null_syscall_loop(500, metal=False))
            m.run(max_instructions=2_000_000)
            results[metal] = m.cycles
        assert results[True] < results[False]


class TestKernelInternals:
    def test_metal_kernel_boots_to_user_level(self):
        m = boot_metal_os("_user:\n" + syscall_metal("SYS_EXIT"))
        m.run(max_instructions=100_000)
        # after boot + exit, the machine halted inside sys_exit (kernel)
        assert m.core.halted

    def test_trap_kernel_user_mode_isolation(self):
        # user code cannot execute a CSR write: kernel fault path prints F
        user = """
_user:
    csrrw zero, CSR_MTVEC, zero
    ecall
"""
        m = boot_trap_os(user)
        m.run(max_instructions=100_000)
        assert "F" in m.output

    def test_unknown_metal_fault_prints_marker(self):
        # a privilege violation in user mode reaches the kernel fault entry
        user = """
_user:
    li   ra, 0x4000
    menter MR_KEXIT          # user calling kexit -> privilege fault
"""
        m = boot_metal_os(user, with_uli=False)
        m.run(max_instructions=100_000)
        assert "F" in m.output
