"""Differential tests: the functional and pipeline engines must retire
identical architectural state (they share semantics, differ in timing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import MRoutine, build_metal_machine, build_trap_machine


PROGRAMS = [
    # arithmetic mix
    """
_start:
    li   a0, 123
    li   a1, 456
    add  a2, a0, a1
    mul  a3, a0, a1
    div  a4, a1, a0
    xor  a5, a2, a3
    halt
""",
    # memory traffic
    """
_start:
    li   t0, 0x2000
    li   t1, 16
loop:
    sw   t1, 0(t0)
    lw   t2, 0(t0)
    add  s0, s0, t2
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, loop
    halt
""",
    # call graph
    """
_start:
    li   sp, 0x8000
    call fib
    halt
fib:
    li   a0, 10
    li   t0, 0
    li   t1, 1
    li   t2, 10
floop:
    add  t3, t0, t1
    mv   t0, t1
    mv   t1, t3
    addi t2, t2, -1
    bnez t2, floop
    mv   a0, t0
    ret
""",
]

METAL_PROGRAM = """
_start:
    li   a0, 5
    menter MR_DOUBLE
    menter MR_DOUBLE
    li   t0, 0x3000
    sw   a0, 0(t0)
    halt
"""


def _routines():
    return [MRoutine(name="double", entry=0, source="add a0, a0, a0\nmexit\n")]


def _run_both(builder, source, **build_kw):
    results = []
    for engine in ("functional", "pipeline"):
        m = builder(engine=engine, **build_kw)
        m.load_and_run(source)
        results.append(m)
    return results


def _assert_same_state(a, b):
    assert a.core.regs == b.core.regs
    assert a.core.pc == b.core.pc
    assert a.core.instret == b.core.instret


@pytest.mark.parametrize("source", PROGRAMS)
def test_trap_machine_state_identical(source):
    a, b = _run_both(lambda **kw: build_trap_machine(**kw), source)
    _assert_same_state(a, b)


def test_metal_machine_state_identical():
    a, b = _run_both(
        lambda **kw: build_metal_machine(_routines(), **kw), METAL_PROGRAM
    )
    _assert_same_state(a, b)
    assert a.read_word(0x3000) == b.read_word(0x3000) == 20


def test_pipeline_cycles_at_least_functional_instret():
    m = build_trap_machine(engine="pipeline", with_caches=False)
    m.load_and_run(PROGRAMS[1])
    # a 5-stage in-order pipeline can never beat 1 instruction per cycle
    assert m.cycles >= m.instret


@st.composite
def random_programs(draw):
    """Random straight-line ALU/memory programs (always terminate)."""
    ops = []
    n = draw(st.integers(3, 25))
    for _ in range(n):
        kind = draw(st.sampled_from(["alu", "alui", "store", "load"]))
        rd = draw(st.integers(5, 15))
        rs1 = draw(st.integers(5, 15))
        rs2 = draw(st.integers(5, 15))
        if kind == "alu":
            op = draw(st.sampled_from(["add", "sub", "xor", "and", "or",
                                       "sll", "srl", "mul"]))
            ops.append(f"    {op} x{rd}, x{rs1}, x{rs2}")
        elif kind == "alui":
            imm = draw(st.integers(-2048, 2047))
            op = draw(st.sampled_from(["addi", "xori", "andi", "ori"]))
            ops.append(f"    {op} x{rd}, x{rs1}, {imm}")
        elif kind == "store":
            off = draw(st.integers(0, 127)) * 4
            ops.append(f"    li x4, 0x2000\n    sw x{rs2}, {off}(x4)")
        else:
            off = draw(st.integers(0, 127)) * 4
            ops.append(f"    li x4, 0x2000\n    lw x{rd}, {off}(x4)")
    body = "\n".join(ops)
    return f"_start:\n    li x5, 17\n    li x6, 99\n{body}\n    halt\n"


@given(random_programs())
@settings(max_examples=40, deadline=None)
def test_random_programs_agree(source):
    a = build_trap_machine(engine="functional", with_caches=False)
    b = build_trap_machine(engine="pipeline", with_caches=False)
    a.load_and_run(source)
    b.load_and_run(source)
    _assert_same_state(a, b)


@given(random_programs())
@settings(max_examples=20, deadline=None)
def test_random_programs_agree_under_interception(source):
    """Engines must also agree when every word load is intercepted and
    emulated by an MRAM handler."""
    emul = MRoutine(name="emul", entry=0, source="""
        wmr  m13, t0
        wmr  m14, t1
        rmr  t0, m29
        srai t1, t0, 20
        rmr  t0, m25
        add  t0, t0, t1
        lw   t1, 0(t0)
        wmr  m27, t1
        rmr  t0, m29
        srli t0, t0, 7
        andi t0, t0, 31
        wmr  m26, t0
        rmr  t1, m14
        rmr  t0, m13
        mexitm
    """, shared_mregs=(13, 14))
    setup = MRoutine(name="setup", entry=1, source="""
        micept a0, a1
        mexit
    """)
    prologue = (
        "_start:\n"
        "    li   a0, 0x503\n"
        "    li   a1, MR_EMUL\n"
        "    menter MR_SETUP\n"
    )
    body = source.split("_start:\n", 1)[1]
    machines = []
    for engine in ("functional", "pipeline"):
        m = build_metal_machine([emul, setup], engine=engine,
                                with_caches=False)
        m.load_and_run(prologue + body)
        machines.append(m)
    a, b = machines
    _assert_same_state(a, b)
    assert a.core.metal.intercept.hits == b.core.metal.intercept.hits
