"""Error hierarchy, runtime helpers, layout and small-module coverage."""

import pytest

from repro import errors
from repro.cpu.exceptions import (
    CAUSE_SYMBOLS,
    Cause,
    TrapException,
    interrupt_line,
    is_interrupt,
)
from repro.mcode.runtime import (
    PRIV_KERNEL,
    PRIV_USER,
    privilege_check,
    raise_privilege_violation,
    restore_scratch,
    save_scratch,
)
from repro.osdemo.layout import MemoryLayout
from repro.isa.metal_ops import InterceptSpec, pack_intercept_spec, unpack_intercept_spec
from hypothesis import given, strategies as st


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        leaf_classes = [
            errors.DecodeError(0), errors.EncodeError("x"),
            errors.AsmSyntaxError("x", 1), errors.AsmSymbolError("x", 1),
            errors.AsmRangeError("x", 1), errors.BusError(0),
            errors.AlignmentError("x"), errors.MramError("x"),
            errors.MroutineLoadError("x"), errors.MroutineVerifyError("x"),
            errors.MetalModeError("x"), errors.InterceptError("x"),
            errors.NestedMetalError("x"), errors.HaltedError("x"),
            errors.ExecutionLimitExceeded(1), errors.GuestPanic("x"),
        ]
        for exc in leaf_classes:
            assert isinstance(exc, errors.ReproError), type(exc)

    def test_asm_errors_carry_position(self):
        exc = errors.AsmSyntaxError("bad", line=7, source="file.s")
        assert "file.s:7" in str(exc)

    def test_verify_error_is_load_error(self):
        assert issubclass(errors.MroutineVerifyError, errors.MroutineLoadError)

    def test_bus_error_formats_address(self):
        assert "0xdeadbeef" in str(errors.BusError(0xDEADBEEF)).lower()

    def test_decode_error_masks_word(self):
        assert errors.DecodeError(-1).word == 0xFFFFFFFF


class TestCauses:
    def test_interrupt_helpers(self):
        cause = Cause.interrupt(3)
        assert is_interrupt(cause)
        assert interrupt_line(cause) == 3
        assert not is_interrupt(Cause.ECALL)

    def test_trap_exception_masks_info(self):
        trap = TrapException(Cause.ECALL, info=-1)
        assert trap.info == 0xFFFFFFFF
        assert not trap.is_interrupt

    def test_cause_symbols_complete(self):
        for cause in Cause:
            assert f"CAUSE_{cause.name}" in CAUSE_SYMBOLS
        assert CAUSE_SYMBOLS["CAUSE_INTERRUPT_NIC"] == 17


class TestRuntimeHelpers:
    def test_scratch_roundtrip_shape(self):
        mapping = [("t0", 10), ("t1", 11)]
        save = save_scratch(mapping)
        restore = restore_scratch(mapping)
        assert "wmr  m10, t0" in save
        assert "wmr  m11, t1" in save
        # restore is in reverse order
        lines = restore.splitlines()
        assert "rmr  t1, m11" in lines[0]
        assert "rmr  t0, m10" in lines[1]

    def test_privilege_check_emits_branch(self):
        text = privilege_check(PRIV_KERNEL, "oops")
        assert "rmr  t0, m0" in text
        assert "bnez t0, oops" in text

    def test_raise_violation_uses_cause_symbol(self):
        assert "CAUSE_PRIVILEGE" in raise_privilege_violation()

    def test_levels(self):
        assert PRIV_KERNEL == 0
        assert PRIV_USER == 1

    def test_scratch_helpers_assemble(self):
        from repro.metal import MRoutine, load_mroutines

        mapping = [("t0", 9), ("t1", 10)]
        source = ("r:\n" + save_scratch(mapping) + "\n"
                  + restore_scratch(mapping) + "\n    mexit\n")
        image = load_mroutines([
            MRoutine(name="r", entry=0, source=source,
                     shared_mregs=(9, 10)),
        ])
        assert "r" in image.routines


class TestLayout:
    def test_symbols_cover_entries(self):
        layout = MemoryLayout()
        symbols = layout.symbols()
        assert symbols["KFAULT_ENTRY"] == layout.kernel_base + 0x40
        assert symbols["KIRQ_ENTRY"] == layout.kernel_base + 0x80
        assert symbols["KSAVE"] < 2048      # must fit a 12-bit immediate
        assert symbols["KPTROOT"] < 2048

    def test_layout_is_frozen(self):
        layout = MemoryLayout()
        with pytest.raises(Exception):
            layout.kernel_base = 0


class TestInterceptSpecProperties:
    @given(st.integers(0, 127), st.one_of(st.none(), st.integers(0, 7)))
    def test_pack_unpack_roundtrip(self, opcode, funct3):
        spec = unpack_intercept_spec(pack_intercept_spec(opcode, funct3))
        assert spec.opcode == opcode
        if funct3 is None:
            assert not spec.match_funct3
        else:
            assert spec.match_funct3
            assert spec.funct3 == funct3

    @given(st.integers(0, 0xFFFFFFFF))
    def test_wildcard_matches_iff_opcode(self, word):
        spec = InterceptSpec(opcode=word & 0x7F)
        assert spec.matches(word)
        other = InterceptSpec(opcode=(word + 1) & 0x7F)
        assert not other.matches(word)

    @given(st.integers(0, 0xFFFFFFFF), st.integers(0, 7))
    def test_funct3_match_consistent(self, word, funct3):
        spec = InterceptSpec(opcode=word & 0x7F, funct3=funct3,
                             match_funct3=True)
        expected = ((word >> 12) & 7) == funct3
        assert spec.matches(word) == expected
