"""End-to-end enclave memory protection (§3.5) under paging.

"After Metal loads and verifies an enclave, the enclave runs in the
trusted execution layer which the host OS cannot access."  Here the host
OS (kernel level 0!) attempts to read enclave memory and faults on the
page key, while the enclave itself reads it fine.
"""

import pytest

from repro import Cause, build_metal_machine
from repro.mcode.enclave import make_enclave_routines
from repro.mcode.pagetable import (
    PTE_G,
    PTE_R,
    PTE_W,
    PTE_X,
    PageTableBuilder,
    make_pagetable_routines,
)
from repro.mcode.privilege import make_kernel_user_routines

FAULT_ENTRY = 0x2000
PT_POOL = 0x100000
ENCLAVE_KEY = 6
ENCLAVE_VA = 0x500000
ENCLAVE_PA = 0x90000
SECRET = 0x5EC12E7


@pytest.fixture
def machine():
    routines = (make_kernel_user_routines(0x2E00, FAULT_ENTRY)
                + make_pagetable_routines(0x2F00, FAULT_ENTRY)
                + make_enclave_routines())
    m = build_metal_machine(routines, with_caches=False)
    m.route_page_faults()
    m.route_cause(Cause.PRIVILEGE, "priv_fault")
    pt = PageTableBuilder(m.bus, pool_base=PT_POOL)
    # identity map code/data, user + global
    pt.map_range(0x0, 0x0, 0x10000,
                 flags=PTE_R | PTE_W | PTE_X | PTE_G | 0x10)
    # the enclave page carries the enclave key
    pt.map(ENCLAVE_VA, ENCLAVE_PA, flags=PTE_R | PTE_W | PTE_G,
           key=ENCLAVE_KEY)
    m.write_word(ENCLAVE_PA, SECRET)
    return m


BOOT = f"""
_start:
    j    boot
.org {FAULT_ENTRY:#x}
kfault:
    li   s11, 1              # host saw a fault
    halt
boot:
    li   a0, {PT_POOL:#x}
    li   a1, 0
    menter MR_PTROOT_SET
    li   a0, 1
    menter MR_PAGING_CTL
    # load the enclave: entry, pages, key -> locks the key via PKR
    li   a0, enclave_entry
    li   a1, {ENCLAVE_PA:#x}
    li   a2, 1
    li   a3, {ENCLAVE_KEY}
    menter MR_ECREATE
"""


class TestEnclaveIsolation:
    def test_host_os_cannot_read_enclave_memory(self, machine):
        machine.load_and_run(BOOT + f"""
    # the HOST OS (kernel level!) tries to read enclave memory
    li   t0, {ENCLAVE_VA:#x}
    lw   s0, 0(t0)           # key locked -> KEY_FAULT -> forwarded
    halt
enclave_entry:
    menter MR_EEXIT
""", base=0x1000, max_instructions=500_000)
        assert machine.reg("s11") == 1
        assert machine.reg("s0") != SECRET

    def test_enclave_reads_its_own_memory(self, machine):
        machine.load_and_run(BOOT + f"""
    # drop to user, then enter the enclave properly
    li   ra, user
    menter MR_KEXIT
user:
    menter MR_EENTER
back:
    mv   s1, a0              # value the enclave extracted
    halt
enclave_entry:
    li   t0, {ENCLAVE_VA:#x}
    lw   a0, 0(t0)           # key unlocked inside the enclave
    menter MR_EEXIT
""", base=0x1000, max_instructions=500_000)
        assert machine.reg("s11") == 0
        assert machine.reg("s1") == SECRET

    def test_key_relocks_after_eexit(self, machine):
        machine.load_and_run(BOOT + f"""
    li   ra, user
    menter MR_KEXIT
user:
    menter MR_EENTER
back:
    li   t0, {ENCLAVE_VA:#x}
    lw   s2, 0(t0)           # outside again: locked -> fault
    halt
enclave_entry:
    menter MR_EEXIT
""", base=0x1000, max_instructions=500_000)
        assert machine.reg("s11") == 1
        assert machine.reg("s2") != SECRET

    def test_measurement_covers_secret(self, machine):
        machine.load_and_run(BOOT + """
    menter MR_EREPORT
    mv   s3, a0
    halt
enclave_entry:
    menter MR_EEXIT
""", base=0x1000, max_instructions=500_000)
        # additive measurement over one page containing the secret word
        assert machine.reg("s3") == SECRET
