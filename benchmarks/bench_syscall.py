"""E2 (§3.1): syscall cost under user-defined privilege levels.

The same MetalOS kernel runs on both machines; the only difference is the
privilege-transition mechanism: kenter/kexit mroutines (Metal) vs
ecall/mret traps (baseline).  We measure the null syscall and two real
syscalls end to end, per call.
"""

from repro.bench.report import format_table
from repro.osdemo.boot import boot_metal_os, boot_trap_os
from repro.osdemo.userprog import syscall_metal, syscall_trap

from common import emit, run_once

CALLS = 500


def _loop(metal, syscall_name):
    call = (syscall_metal if metal else syscall_trap)(syscall_name)
    exit_call = (syscall_metal if metal else syscall_trap)("SYS_EXIT")
    return f"""
_user:
    li   sp, USER_STACK_TOP
    li   s0, {CALLS}
uloop:
{call}    addi s0, s0, -1
    bnez s0, uloop
{exit_call}"""


def _empty(metal):
    exit_call = (syscall_metal if metal else syscall_trap)("SYS_EXIT")
    return f"""
_user:
    li   sp, USER_STACK_TOP
    li   s0, {CALLS}
uloop:
    nop
    nop
    addi s0, s0, -1
    bnez s0, uloop
{exit_call}"""


def _per_call(metal, syscall_name):
    boot = boot_metal_os if metal else boot_trap_os
    kw = {"with_uli": False} if metal else {}
    m1 = boot(_loop(metal, syscall_name), engine="pipeline", **kw)
    m1.run(max_instructions=10_000_000)
    m2 = boot(_empty(metal), engine="pipeline", **kw)
    m2.run(max_instructions=10_000_000)
    return (m1.cycles - m2.cycles) / CALLS


def run_experiment():
    rows = []
    for name in ("SYS_NULL", "SYS_GETPID", "SYS_TIME"):
        metal = _per_call(True, name)
        trap = _per_call(False, name)
        rows.append([name.lower(), metal, trap, trap / metal])
    return rows


def test_syscall_cost(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit("e2_syscall", format_table(
        f"E2: syscall cost, MetalOS on both machines "
        f"(cycles/call, {CALLS} calls, pipeline engine, warm caches)",
        ["syscall", "Metal kenter/kexit", "trap ecall/mret", "speedup"],
        rows,
        note="Paper §3.1: privilege transitions via mroutines replace the "
             "trap machinery; MRAM locality + decode replacement make them "
             "cheaper.",
    ))
    for name, metal, trap, speedup in rows:
        assert metal < trap, f"{name}: Metal must win"
        assert speedup > 1.2, f"{name}: expected a clear margin"
