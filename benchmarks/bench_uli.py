"""E5 (§3.4): user-level interrupts vs polling vs kernel mediation.

"Currently, both DPDK and SPDK interact with NICs or storage devices by
polling in user mode, which consumes all cores used by the application.
With user level interrupt, such applications only need to be notified via
interrupts when data is available from underlying devices, reducing CPU
occupancy and power consumption."

Same synthetic NIC, same Poisson arrival process, three delivery schemes:

* **polling** — DPDK-style busy loop on RX_STATUS (zero spare work);
* **ULI** — Metal delivers the NIC interrupt straight to the user handler
  (no privilege switch); the core runs application work in between;
* **kernel-mediated** — the interrupt goes to the kernel, which drains
  the packet and resumes the user (the conventional path).

Metrics: mean arrival->drain latency, and useful work per 1000 cycles.
"""

from repro import build_metal_machine
from repro.bench.report import format_table
from repro.bench.workloads import poisson_arrivals
from repro.mcode.privilege import make_kernel_user_routines
from repro.mcode.uli import make_uli_routines

from common import emit, run_once

FAULT_ENTRY = 0x1040
KIRQ_ENTRY = 0x1080
PACKETS = 30
MEAN_GAP = 2000


def machine():
    routines = (make_kernel_user_routines(0x2E00, FAULT_ENTRY)
                + make_uli_routines(KIRQ_ENTRY))
    m = build_metal_machine(routines, engine="pipeline")
    for t in poisson_arrivals(PACKETS, MEAN_GAP, start=3000, seed=11):
        m.nic.schedule_packet(t, b"\x01" * 64)
    m.nic.irq_enabled = True
    return m


DRAIN = """
    li   t0, NIC_DMA_ADDR
    li   t1, 0x6000
    sw   t1, 0(t0)
    li   t0, NIC_RX_POP
    li   t1, 1
    sw   t1, 0(t0)
"""

POLLING = f"""
_start:
    li   s0, 0
    li   s1, 0               # no spare work: the core is burned polling
poll:
    li   t0, NIC_RX_STATUS
    lw   t1, 0(t0)
    beqz t1, poll
{DRAIN}
    addi s0, s0, 1
    li   t2, {PACKETS}
    bltu s0, t2, poll
    halt
"""

ULI = f"""
_start:
    li   a0, handler
    li   a1, 1
    li   a2, IRQ_LINE_NIC
    menter MR_ULI_REGISTER
    li   ra, user
    menter MR_KEXIT
user:
    li   s0, 0
    li   s1, 0
work:
    addi s1, s1, 1           # application work between interrupts
    li   t2, {PACKETS}
    bltu s0, t2, work
    halt
handler:
{DRAIN}
    addi s0, s0, 1
    menter MR_ULI_RET
"""

KERNEL_MEDIATED = f"""
_start:
    j    boot
.org {KIRQ_ENTRY:#x}
kirq:
    # conventional path: the kernel saves the interrupted registers (a
    # real kernel saves the whole frame), drains, and resumes the user
    sw   t0, 0x700(zero)
    sw   t1, 0x704(zero)
{DRAIN}
    li   t0, 0x6100
    lw   t1, 0(t0)           # kernel-side accounting
    addi t1, t1, 1
    sw   t1, 0(t0)
    lw   t1, 0x704(zero)
    lw   t0, 0x700(zero)
    menter MR_ULI_KRET
boot:
    li   a0, 0               # no user handler: sanctioned level 9 never
    li   a1, 9               # matches, so everything goes to the kernel
    li   a2, IRQ_LINE_NIC
    menter MR_ULI_REGISTER
    li   ra, user
    menter MR_KEXIT
user:
    li   s1, 0
work:
    addi s1, s1, 1
    li   t0, NIC_RX_TOTAL
    lw   s0, 0(t0)
    li   t2, {PACKETS}
    bltu s0, t2, work
    halt
"""


def _run(source):
    m = machine()
    m.load_and_run(source, base=0x1000, max_instructions=20_000_000)
    lats = [pop - arr for arr, pop in m.nic.latencies]
    mean_lat = sum(lats) / len(lats)
    work_rate = 1000.0 * m.reg("s1") / m.cycles
    return m.nic.delivered, mean_lat, m.reg("s1"), work_rate


def run_experiment():
    rows = []
    for label, source in [
        ("polling (DPDK-style)", POLLING),
        ("user-level interrupt", ULI),
        ("kernel-mediated interrupt", KERNEL_MEDIATED),
    ]:
        delivered, lat, work, rate = _run(source)
        rows.append([label, delivered, lat, work, rate])
    return rows


def test_uli(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit("e5_uli", format_table(
        f"E5: packet delivery ({PACKETS} packets, Poisson mean gap "
        f"{MEAN_GAP} cycles, pipeline engine)",
        ["scheme", "delivered", "mean latency (cyc)",
         "work units", "work / 1000 cyc"],
        rows,
        note="Paper §3.4: ULI keeps latency near polling while freeing the "
             "core; the kernel-mediated path pays more per interrupt.",
    ))
    by = {r[0]: r for r in rows}
    poll = by["polling (DPDK-style)"]
    uli = by["user-level interrupt"]
    kern = by["kernel-mediated interrupt"]
    assert poll[1] == uli[1] == kern[1] == PACKETS
    # CPU occupancy: polling does zero work; ULI frees the core.
    assert poll[3] == 0
    assert uli[3] > 1000
    # Delivery cost ordering: ULI cheaper than kernel mediation.
    assert uli[2] < kern[2]
    # ULI latency within a small constant of busy polling.
    assert uli[2] - poll[2] < 60
