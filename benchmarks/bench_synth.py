"""MSYNTH end-to-end benchmark: profile-guided mroutine synthesis.

Runs the full pipeline (profile -> mine -> generate -> append ->
rewrite -> measure) on the two fusion-friendly MPROF workloads and
accounts for the synthesized extension the way the paper's Table 2
accounts for Metal itself: each candidate's cells/wires delta from
:func:`repro.synthesis.build_metal_extension` — what the fused
mroutine's MRAM code/data footprint and entry slot would cost in
silicon.

The headline is the architectural-cycle speedup: the fused hot loop
fetches from single-cycle MRAM instead of paying the guest-RAM fetch
latency every iteration, so the win approaches the memory latency.
Asserts ≥1.15× on at least one workload (both land far above), digest
parity, MAS lint cleanliness and decode-oracle agreement.  Results
land in ``BENCH_synth.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_synth.py``) or
via pytest.
"""

from __future__ import annotations

import json
import os
import sys

from repro.bench.report import format_table
from repro.synth.pipeline import synthesize_workload

try:
    from common import emit, run_once
except ImportError:  # direct execution from the repo root
    sys.path.insert(0, os.path.dirname(__file__))
    from common import emit, run_once

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_synth.json")

WORKLOADS = ("tight_loop", "hash_mix")
ITERS = 4_000


def run_experiment():
    return {name: synthesize_workload(name, iters=ITERS)
            for name in WORKLOADS}


def check_shape(reports):
    # ≥1.15x on at least one workload is the acceptance floor; in
    # practice both fused loops approach the RAM fetch latency.
    assert any(r["speedup"] >= 1.15 for r in reports.values()), (
        "no workload reached the 1.15x speedup floor")
    for name, report in reports.items():
        assert report["candidates"], f"{name}: no candidate synthesized"
        assert report["digest"]["match"], f"{name}: digest mismatch"
        assert report["lint_clean"], f"{name}: MAS lint errors"
        for cand in report["candidates"]:
            assert cand["oracle_disagreements"] == 0, (
                f"{name}/{cand['name']}: decode-oracle disagreement")
            assert cand["hw_delta"]["cells"] > 0
            assert cand["hw_delta"]["wires"] > 0


def candidate_rows(reports):
    rows = []
    for name, report in reports.items():
        for cand in report["candidates"]:
            rows.append([
                name, cand["name"], cand["kind"], cand["length"],
                cand["style"], cand["purity"] or "?",
                cand["invocations"] if cand["invocations"] is not None
                else "-",
                cand["hw_delta"]["cells"], cand["hw_delta"]["wires"],
            ])
    return rows


def speedup_rows(reports):
    rows = []
    for name, report in reports.items():
        rows.append([
            name, report["baseline"]["cycles"],
            report["rewritten"]["cycles"],
            f"{report['speedup']:.2f}x",
            "MATCH" if report["digest"]["match"] else "MISMATCH",
            "clean" if report["lint_clean"] else "DIRTY",
        ])
    return rows


def render(reports) -> str:
    table_hw = format_table(
        "E10a: synthesized-mroutine hardware delta (Table-2-style "
        "accounting per candidate)",
        ["workload", "routine", "kind", "words", "style", "purity",
         "invoked", "Δcells", "Δwires"],
        candidate_rows(reports),
        note="Deltas are build_metal_extension(+code, +data, +1 routine) "
             "minus the pre-append footprint: the silicon a vendor pays "
             "to ship this application-specific extension.",
    )
    table_speed = format_table(
        "\nE10b: baseline vs rewritten guest (architectural cycles, "
        f"{ITERS} iterations)",
        ["workload", "baseline cycles", "rewritten cycles", "speedup",
         "digest", "mas lint"],
        speedup_rows(reports),
        note="Fused regions fetch from single-cycle MRAM instead of "
             "guest RAM — the same mechanism that makes the paper's "
             "mroutines fast.",
    )
    return table_hw + "\n" + table_speed


def write_json(reports) -> str:
    payload = {"tool": "msynth-bench", "iters": ITERS, "reports": reports}
    with open(JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return JSON_PATH


def test_synth_bench(benchmark):
    reports = run_once(benchmark, run_experiment)
    check_shape(reports)
    emit("e10_synth", render(reports))
    write_json(reports)


if __name__ == "__main__":
    results = run_experiment()
    check_shape(results)
    print(render(results))
    path = write_json(results)
    print(f"\nresults written to {path}")
