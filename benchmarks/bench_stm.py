"""E4 (§3.3): software transactional memory via interception.

"The benefit of using Metal is that neither compilers nor developers need
to replace loads and stores with calls into an STM library.  Instead,
Metal turns on and off interception of loads and stores at runtime."

Three measurements:

1. **In-transaction cost** — array transactions of K word accesses:
   interception-driven STM vs the explicit-call STM library baseline
   (same TL2 logic; the caller replaces each lw/sw with a routine call,
   i.e. what compiler instrumentation produces).
2. **Fast-path cost** — the *non*-transactional code path: with Metal the
   interception is simply off (native speed); the library baseline keeps
   paying the call per access, because instrumentation is static.
3. **Abort behaviour** — conflict-rate sweep via remote writes.
"""

from repro import build_metal_machine
from repro.bench.report import format_table
from repro.mcode.stm import StmHost, make_stm_routines

from common import emit, run_once

CLOCK = 0x20000
LOCKS = 0x21000
ARRAY = 0x30000
TXNS = 100
K = 8  # accesses per transaction (K/2 reads + K/2 writes)


def machine():
    return build_metal_machine(make_stm_routines(CLOCK, LOCKS),
                               engine="pipeline")


def _intercepted_tx_program():
    body = "".join(
        f"    lw   t1, {8 * i}(s2)\n    addi t1, t1, 1\n"
        f"    sw   t1, {8 * i + 4}(s2)\n"
        for i in range(K // 2)
    )
    return f"""
_start:
    li   s0, {TXNS}
    li   s2, {ARRAY:#x}
txloop:
    li   a0, onabort
    menter MR_TSTART
{body}
    menter MR_TCOMMIT
    beqz a0, txloop          # commit-time abort: retry without counting
    addi s0, s0, -1
    bnez s0, txloop
    halt
onabort:
    j    txloop
"""


def _explicit_tx_program():
    body = "".join(
        f"    li   a0, {ARRAY + 8 * i:#x}\n"
        f"    menter MR_TREAD_X\n"
        f"    addi a1, a0, 1\n"
        f"    li   a0, {ARRAY + 8 * i + 4:#x}\n"
        f"    menter MR_TWRITE_X\n"
        for i in range(K // 2)
    )
    return f"""
_start:
    li   s0, {TXNS}
txloop:
    li   a0, onabort
    menter MR_TSTART_X
{body}
    menter MR_TCOMMIT
    beqz a0, txloop          # commit-time abort: retry without counting
    addi s0, s0, -1
    bnez s0, txloop
    halt
onabort:
    j    txloop
"""


def _fastpath_native():
    return f"""
_start:
    li   s0, {TXNS * K}
    li   s2, {ARRAY:#x}
loop:
    lw   t1, 0(s2)
    sw   t1, 4(s2)
    addi s0, s0, -2
    bnez s0, loop
    halt
"""


def _fastpath_instrumented():
    return f"""
_start:
    li   s0, {TXNS * K}
loop:
    li   a0, {ARRAY:#x}
    menter MR_TREAD_X        # static instrumentation can't be turned off
    mv   a1, a0
    li   a0, {ARRAY + 4:#x}
    menter MR_TWRITE_X
    addi s0, s0, -2
    bnez s0, loop
    halt
"""


def run_experiment():
    rows = []
    # 1/2: cycle cost per transactional access, and per fast-path access
    for label, source in [
        ("in-tx, interception (Metal)", _intercepted_tx_program()),
        ("in-tx, explicit calls (library)", _explicit_tx_program()),
        ("fast path, interception off (Metal)", _fastpath_native()),
        ("fast path, static instrumentation", _fastpath_instrumented()),
    ]:
        m = machine()
        m.load_and_run(source, max_instructions=10_000_000)
        per_access = m.cycles / (TXNS * K)
        rows.append([label, per_access])
    # NOTE: the fast-path library variant buffers writes it never commits;
    # only its per-access cost matters here.
    return rows


def run_conflicts():
    """Abort-rate sweep: a remote writer hits the array every N txns."""
    rows = []
    for period in (0, 10, 4, 2):
        m = machine()
        host = StmHost(m, CLOCK, LOCKS)
        prog = m.assemble(_intercepted_tx_program(), base=0x1000)
        m.load(prog)
        m.core.pc = 0x1000
        steps = 0
        injected_for = -1
        while not m.core.halted and steps < 4_000_000:
            m.sim.step()
            steps += 1
            if not period:
                continue
            # Inject the remote write *mid-transaction*, after the victim
            # has taken its read snapshot and logged at least one read
            # (TL2 only aborts on writes between rv-snapshot and commit).
            tx_index = host.commits + host.aborts
            if (
                host.in_tx
                and host.read_set_size >= 1
                and tx_index % period == 0
                and injected_for != tx_index
            ):
                host.remote_write(ARRAY, tx_index + 1)
                injected_for = tx_index
        rows.append([
            f"remote write every {period} txns" if period else "no conflicts",
            host.commits, host.aborts,
        ])
    return rows


def test_stm_costs(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit("e4_stm_costs", format_table(
        f"E4a: STM access cost ({TXNS} transactions x {K} word accesses, "
        "pipeline engine)",
        ["configuration", "cycles/access"], rows,
        note="Paper §3.3: interception removes the instrumentation tax and "
             "costs nothing once the transaction ends.",
    ))
    costs = {label: c for label, c in rows}
    icpt = costs["in-tx, interception (Metal)"]
    expl = costs["in-tx, explicit calls (library)"]
    fast_metal = costs["fast path, interception off (Metal)"]
    fast_lib = costs["fast path, static instrumentation"]
    # In-transaction, interception tracks the explicit library (same logic;
    # decode work ~ call setup work).
    assert icpt / expl < 1.6
    # Fast path: Metal is native; the instrumented baseline pays the call
    # plus the in_tx check on every single access.
    assert fast_lib / fast_metal > 2.5
    assert fast_metal < 5


def test_stm_conflicts(benchmark):
    rows = run_once(benchmark, run_conflicts)
    emit("e4_stm_conflicts", format_table(
        "E4b: abort behaviour under injected conflicts "
        f"({TXNS} transactions)",
        ["conflict injection", "commits", "aborts"], rows,
    ))
    by_label = {r[0]: r for r in rows}
    assert by_label["no conflicts"][2] == 0
    assert by_label["no conflicts"][1] == TXNS
    # more frequent remote writes -> more aborts
    aborts = [r[2] for r in rows]
    assert aborts[-1] >= aborts[1]
    # every run still commits all its transactions eventually
    assert all(r[1] == TXNS for r in rows)
