"""E8 (§3.5): the extension sketches, measured.

The paper argues capabilities, enclaves and control-flow protection are
expressible as mroutines.  We built them; this benchmark prices them:

* shadow-stack protection per call/return pair;
* capability-mediated load vs a raw load;
* enclave enter/exit round trip vs a plain function call.
"""

from repro import Cause, build_metal_machine
from repro.bench.report import format_table
from repro.mcode.capability import make_capability_routines
from repro.mcode.enclave import make_enclave_routines
from repro.mcode.privilege import make_kernel_user_routines
from repro.mcode.shadowstack import make_shadowstack_routines

from common import emit, run_once

N = 200
FAULT_ENTRY = 0x1040


def machine():
    routines = (make_kernel_user_routines(0x2E00, FAULT_ENTRY)
                + make_shadowstack_routines()
                + make_capability_routines()
                + make_enclave_routines())
    m = build_metal_machine(routines, engine="pipeline")
    m.route_cause(Cause.PRIVILEGE, "priv_fault")
    return m


def _cycles(source):
    m = machine()
    m.load_and_run(source, base=0x1000, max_instructions=10_000_000)
    return m.cycles


def run_experiment():
    plain_call = _cycles(f"""
_start:
    li   s0, {N}
loop:
    call f
    addi s0, s0, -1
    bnez s0, loop
    halt
f:
    ret
""")
    protected_call = _cycles(f"""
_start:
    li   s0, {N}
loop:
    call f
    addi s0, s0, -1
    bnez s0, loop
    halt
f:
    menter MR_SSPUSH
    menter MR_SSCHECK
    ret
""")
    raw_load = _cycles(f"""
_start:
    li   s0, {N}
    li   s2, 0x8000
loop:
    lw   a0, 0(s2)
    addi s0, s0, -1
    bnez s0, loop
    halt
""")
    cap_load = _cycles(f"""
_start:
    li   a0, 0x8000
    li   a1, 64
    li   a2, 3
    menter MR_CAP_CREATE
    mv   s2, a0
    li   s0, {N}
loop:
    mv   a0, s2
    li   a1, 0
    menter MR_CAP_LOAD
    addi s0, s0, -1
    bnez s0, loop
    halt
""")
    enclave_rt = _cycles(f"""
_start:
    li   a0, enclave_body
    li   a1, 0x9000
    li   a2, 1
    li   a3, 6
    menter MR_ECREATE
    li   ra, user
    menter MR_KEXIT
user:
    li   s0, {N}
loop:
    menter MR_EENTER
back:
    addi s0, s0, -1
    bnez s0, loop
    halt
enclave_body:
    menter MR_EEXIT
""")
    plain_rt = _cycles(f"""
_start:
    li   ra, user
    menter MR_KEXIT
user:
    li   s0, {N}
loop:
    call f
    addi s0, s0, -1
    bnez s0, loop
    halt
f:
    ret
""")
    rows = [
        ["call+return, unprotected", plain_call / N],
        ["call+return, shadow stack", protected_call / N],
        ["word load, raw", raw_load / N],
        ["word load, capability-checked", cap_load / N],
        ["domain round trip, plain call", plain_rt / N],
        ["domain round trip, enclave eenter/eexit", enclave_rt / N],
    ]
    return rows


def test_extensions_cost(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit("e8_extensions", format_table(
        f"E8: §3.5 extension costs (cycles/op, {N} iterations, "
        "pipeline engine)",
        ["operation", "cycles/op"], rows,
        note="All three extensions run at mroutine (microcode-level) "
             "overhead: tens of cycles, no hardware changes beyond Metal.",
    ))
    by = {r[0]: r[1] for r in rows}
    # protections cost something, but stay in the tens of cycles
    ss_overhead = by["call+return, shadow stack"] - by["call+return, unprotected"]
    assert 0 < ss_overhead < 60
    cap_overhead = (by["word load, capability-checked"]
                    - by["word load, raw"])
    assert 0 < cap_overhead < 80
    enclave_overhead = (by["domain round trip, enclave eenter/eexit"]
                        - by["domain round trip, plain call"])
    assert 0 < enclave_overhead < 80
