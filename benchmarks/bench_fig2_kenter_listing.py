"""Figure 2: the assembly of system call entry (kenter) and exit (kexit).

Regenerates the paper's listing from the live privilege routines, and
verifies it is real code: it assembles, survives a disassembly round-trip,
and matches the behaviours the paper narrates (privilege level in m0,
syscall entry computed via t0, userspace return address in ra).
"""

from repro.asm import assemble
from repro.isa.decoder import decode
from repro.mcode.privilege import kenter_source, kexit_source

from common import emit, run_once

SYSCALL_TABLE = 0x2E00


def build_listing():
    kenter = kenter_source(SYSCALL_TABLE)
    kexit = kexit_source()
    symbols = {"CAUSE_PRIVILEGE": 11}
    progs = {
        "kenter": assemble(kenter, base=0, symbols=symbols),
        "kexit": assemble(kexit, base=0, symbols=symbols),
    }
    return kenter, kexit, progs


def test_fig2_listing(benchmark):
    kenter, kexit, progs = run_once(benchmark, build_listing)
    text = (
        "Figure 2: The assembly of system call entry (kenter) and exit "
        "(kexit) mroutines.\n\n"
        + kenter + "\n" + kexit
        + "\nAssembled sizes: "
        + ", ".join(f"{name}: {len(p.words())} words"
                    for name, p in progs.items())
    )
    emit("fig2_kenter_listing", text)

    # The paper's narration, checked against the real instruction stream:
    kenter_ops = [decode(w).mnemonic for w in progs["kenter"].words()]
    kexit_ops = [decode(w).mnemonic for w in progs["kexit"].words()]
    # "updates the current privilege level in m0"
    assert "wmr" in kenter_ops and "wmr" in kexit_ops
    # "computes the syscall entry point" (shift + add + load)
    assert "slli" in kenter_ops and "mpld" in kenter_ops
    # "save the userspace return address in register ra"
    assert decode(progs["kenter"].words()[0]).mnemonic == "rmr"
    # both transition back with mexit
    assert "mexit" in kenter_ops and "mexit" in kexit_ops
    # kexit checks the caller's privilege and can raise a violation
    assert "mraise" in kexit_ops
    # they are short — a handful of instructions, as the paper shows
    assert len(progs["kenter"].words()) <= 12
    assert len(progs["kexit"].words()) <= 12
