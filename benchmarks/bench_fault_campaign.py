"""MFI fault-campaign benchmark: determinism, containment, coverage.

Unlike the paper-figure benchmarks, this one exercises the MFI
subsystem (:mod:`repro.fault`, docs/FAULTS.md) as a whole and asserts
its contract rather than a guest-visible number:

* **containment** — every injected fault is classified; none escapes as
  a ``host_crash`` (a non-ReproError out of the simulator);
* **termination** — every run ends (halt, guest-detected error, or the
  step-budget watchdog); the campaign produces exactly one record per
  ``(workload, seed)`` cell;
* **bit-reproducibility** — running the identical seed list twice
  yields byte-identical report JSON (the acceptance criterion that
  makes a campaign diff a regression signal);
* **recovery** — checkpoint-retry brings every retried state-fault run
  back to a clean halt (the golden-equivalence of individual retries is
  covered per-class in tests/test_fault.py).

The campaign summary is also fed through
``common.perf_summary(..., fault_report=...)`` so the host-perf section
and the outcome table land in one artifact
(``benchmarks/results/fault_campaign.txt``).
"""

from __future__ import annotations

import json
import os

from common import emit, perf_summary, run_once

from repro.fault.campaign import (
    CampaignConfig, format_summary, report_json, run_campaign,
)

SEEDS = tuple(range(30))


def run_experiment() -> dict:
    config = CampaignConfig(seeds=SEEDS, workers=0, recover=True)
    report = run_campaign(config)
    rerun = run_campaign(config)
    return {"report": report, "identical": report_json(report)
            == report_json(rerun)}


def check_shape(result: dict) -> None:
    report = result["report"]
    summary = report["summary"]
    expected = len(report["config"]["workloads"]) * len(SEEDS)
    assert summary["runs"] == expected, "campaign lost runs"
    assert summary["total"]["host_crash"] == 0, "fault escaped the simulator"
    assert sum(summary["total"].values()) == expected, "unclassified run"
    assert result["identical"], "campaign report is not bit-reproducible"
    recovery = summary["recovery"]
    if recovery["attempted"]:
        assert recovery["recovered"] == recovery["attempted"], \
            "checkpoint retry failed to reach a clean halt"


def test_fault_campaign(benchmark):
    result = run_once(benchmark, run_experiment)
    check_shape(result)
    report = result["report"]
    emit("fault_campaign", format_summary(report))
    with open(os.path.join(os.path.dirname(__file__), "results",
                           "fault_campaign.json"), "w") as fh:
        fh.write(report_json(report) + "\n")


def test_fault_summary_in_perf_summary():
    """The campaign table rides along in the shared perf summary."""
    from repro.profile.workloads import build_workload

    config = CampaignConfig(workloads=("tight_loop",), seeds=(0, 1, 2),
                            workers=0)
    report = run_campaign(config)
    machine = build_workload("tight_loop")
    machine.load_and_run("_start:\n  addi t0, t0, 1\n  halt\n")
    text = perf_summary(machine, label="fault-campaign",
                        fault_report=report)
    assert "fault campaign (MFI)" in text
    assert "tight_loop" in text


if __name__ == "__main__":
    result = run_experiment()
    check_shape(result)
    print(format_summary(result["report"]))
    print(json.dumps(result["report"]["summary"]["total"]))
