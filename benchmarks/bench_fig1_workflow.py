"""Figure 1: the Metal workflow and additional hardware components.

Figure 1 in the paper is a block diagram (workflow + the MRAM/MReg added
to the 5-stage pipeline).  We regenerate its content as a structural
inventory of a live machine carrying the paper's complete application set:
the boot-time loading step (mroutines -> MRAM with entry numbers), the
Metal register file, and the delivery/interception wiring.
"""

from repro import Cause, build_metal_machine
from repro.bench.report import format_table
from repro.mcode.capability import make_capability_routines
from repro.mcode.enclave import make_enclave_routines
from repro.mcode.pagetable import make_pagetable_routines
from repro.mcode.privilege import (
    make_isolation_routines,
    make_kernel_user_routines,
)
from repro.mcode.shadowstack import make_shadowstack_routines
from repro.mcode.stm import make_stm_routines
from repro.mcode.uli import make_uli_routines
from repro.mcode.virt import make_virt_routines

from common import emit, run_once


def build_full_machine():
    routines = (
        make_kernel_user_routines(0x2E00, 0x1040)
        + make_isolation_routines(0x5000, vault_key=2)
        + make_pagetable_routines(0x2F00, 0x1040)
        + make_stm_routines(0x20000, 0x21000)
        + make_uli_routines(0x1080)
        + make_shadowstack_routines()
        + make_capability_routines()
        + make_enclave_routines()
        + make_virt_routines(0x1040)
    )
    machine = build_metal_machine(routines)
    machine.route_page_faults()
    machine.route_cause(Cause.PRIVILEGE, "priv_fault")
    return machine


def test_fig1_workflow(benchmark):
    machine = run_once(benchmark, build_full_machine)
    inv = machine.inventory()

    rows = [
        [name, info["entry"], info["words"], info["data_words"]]
        for name, info in sorted(inv["mroutines"].items(),
                                 key=lambda kv: kv[1]["entry"])
    ]
    table = format_table(
        "Figure 1 (content): boot-time mroutine loading into MRAM",
        ["mroutine", "entry#", "code words", "data words"],
        rows,
    )
    summary = "\n".join([
        "",
        "Metal components attached to the 5-stage pipeline:",
        f"  MRAM code segment : {inv['mram_code_bytes']:,} bytes "
        f"({inv['mram_code_used']:,} used)",
        f"  MRAM data segment : {inv['mram_data_bytes']:,} bytes "
        f"({inv['mram_data_used']:,} used)",
        f"  MReg file         : {inv['mreg_count']} registers (m0-m31)",
        f"  mroutine entries  : {len(inv['mroutines'])} / 64",
        f"  routed causes     : "
        f"{machine.core.metal.delivery.routed_causes}",
        f"  TLB               : {inv['tlb_entries']} entries "
        "(software managed, ASIDs + page keys)",
        f"  devices           : {', '.join(inv['devices'])}",
    ])
    emit("fig1_workflow", table + summary)

    assert len(inv["mroutines"]) <= 64          # paper: "up to 64 mroutines"
    assert inv["mram_code_used"] <= inv["mram_code_bytes"]
    assert inv["mreg_count"] == 32              # paper: m0-m31
    entries = [r[1] for r in rows]
    assert len(entries) == len(set(entries))    # unique entry numbers
