"""Table 1: the new Metal instructions.

Regenerates the paper's Table 1 from the live ISA definition — mnemonic,
encoding fields, availability and semantics — and checks the invariant the
table's caption states: ``menter`` is the only Metal instruction available
in normal mode.
"""

from repro.bench.report import format_table
from repro.isa.opcodes import SPECS, TABLE1_MNEMONICS, TABLE1_SEMANTICS

from common import emit, run_once


def build_table1():
    rows = []
    for m in TABLE1_MNEMONICS:
        spec = SPECS[m]
        rows.append([
            m,
            spec.operands or "-",
            "Metal mode" if spec.metal_only else "normal mode",
            TABLE1_SEMANTICS[m],
        ])
    return rows


def test_table1(benchmark):
    rows = run_once(benchmark, build_table1)
    text = format_table(
        "Table 1: New Metal instructions.  Applications executing in "
        "normal mode invoke menter to enter Metal mode.  The rest are "
        "only available in Metal mode.",
        ["instruction", "operands", "available in", "semantics"],
        rows,
    )
    emit("table1_instructions", text)

    assert [r[0] for r in rows] == list(TABLE1_MNEMONICS)
    normal_mode = [r[0] for r in rows if r[2] == "normal mode"]
    assert normal_mode == ["menter"]          # the caption's invariant
    assert len(rows) == 6
