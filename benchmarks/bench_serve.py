"""MSERVE serving benchmark: a traffic generator against a live fleet.

Unlike the other benchmarks this one exercises the *service*, not a
single machine: it boots a real :class:`repro.serve.fleet.Fleet` with
process shards behind the real asyncio HTTP front end, then drives a
mixed request stream through actual TCP connections:

* all six named MPROF workloads, repeatedly (this is what fills the
  warm-start pools — the first request per (workload, shard) boots
  cold, the rest restore the pooled snapshot);
* inline user programs (assembled + MAS-linted on admission);
* deliberately bad requests (assembly errors, lint rejects, unknown
  workloads) that the gate must bounce with a structured error while
  the rest of the stream keeps flowing.

The run asserts the serving contract:

* **zero failures** — every well-formed request completes with
  ``status: ok``; every bad request is rejected at the gate
  (``assembly_error`` / ``lint_rejected`` / ``bad_request``), and no
  response ever reports ``shard_failure``;
* **zero corruption** — each workload's ``digest_sha`` matches a
  golden digest computed locally on a dedicated machine before the
  server boots.  Warm-started, preempted and migrated runs are all
  bit-identical to a machine that ran alone;
* **warm starts pay off** — the fleet-wide mean warm setup (snapshot
  restore) is ≥2x faster than the mean cold boot (build + assemble +
  load), asserted in the full run;
* **the fleet actually shards** — the full run uses 4 process shards
  and checks that more than one shard served traffic.

The JSON (``BENCH_serve.json``) records machines-per-second, aggregate
host MIPS, setup times and request latency percentiles (p50/p99), plus
a ``trajectory`` list for trend tracking across PRs.  ``--smoke`` is
the CI mode: 2 shards, ~50 requests, results to ``serve_smoke.json``
(uploaded as an artifact) so the committed full-run JSON is never
clobbered.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys

from repro.profile.workloads import WORKLOADS
from repro.serve.api import architectural_digest, digest_hex, parse_request
from repro.serve.fleet import Fleet, FleetConfig
from repro.serve.http import start_server
from repro.serve.shard import ShardWorker

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_serve.json")
SMOKE_JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                               "serve_smoke.json")
#: Label this PR's numbers carry in the JSON trajectory.
TRAJECTORY_LABEL = "pr9_mserve"

#: Iteration count per workload request — small enough that a request is
#: latency- not compute-bound, large enough to cross several quanta for
#: the long workloads (so preemption/migration actually happens).
ITERS = {"full": 400, "smoke": 150}

#: Inline programs the generator mixes in: (label, source, must_admit).
INLINE_PROGRAMS = [
    ("sum_loop",
     "_start:\n    li t0, 50\n    li t1, 0\nloop:\n    add t1, t1, t0\n"
     "    addi t0, t0, -1\n    bnez t0, loop\n    halt\n", True),
    ("console_hello",
     "_start:\n    li t0, CONSOLE_TX\n    li t1, 'h'\n    sw t1, 0(t0)\n"
     "    li t1, 'i'\n    sw t1, 0(t0)\n    halt\n", True),
    ("bad_mnemonic", "_start:\n    frobnicate x1\n", False),
    ("fall_off_end", "_start:\n    li t0, 1\n    addi t0, t0, 1\n", False),
]


def golden_digests(iters: int) -> dict:
    """Per-workload golden digest, computed on a dedicated worker before
    the server exists — the corruption oracle for every response."""
    worker = ShardWorker("golden")
    digests = {}
    for name in sorted(WORKLOADS):
        spec = parse_request({"workload": name, "iters": iters},
                             f"golden-{name}", 50_000_000)
        response = worker.execute({
            "spec": spec, "quantum": 50_000_000,
            "budget_left": spec.max_instructions,
            "resume": None, "console": "", "cycles_done": 0,
        })
        assert response["kind"] == "done" and response["error"] is None, \
            (name, response["error"])
        digests[name] = response["result"]["digest_sha"]
    return digests


async def _request(host, port, method, path, body=None):
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode() if body is not None else b""
    writer.write((f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                  f"Content-Length: {len(payload)}\r\n"
                  f"Connection: close\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    status = int(raw.split(b" ", 2)[1])
    return status, json.loads(raw.split(b"\r\n\r\n", 1)[1])


def request_stream(total: int, iters: int) -> list:
    """The mixed request list: workloads round-robin + inline programs.

    Deterministic by construction — every 8th slot is an inline program
    (every 16th of those a must-reject), the rest cycle the six named
    workloads, so any (total, iters) pair replays identically.
    """
    names = sorted(WORKLOADS)
    stream = []
    for i in range(total):
        if i % 8 == 7:
            label, source, ok = INLINE_PROGRAMS[(i // 8) % len(INLINE_PROGRAMS)]
            stream.append(("source", label,
                           {"source": source, "label": label}, ok))
        else:
            name = names[i % len(names)]
            stream.append(("workload", name,
                           {"workload": name, "iters": iters}, True))
    return stream


async def drive(host, port, stream, concurrency: int = 24):
    """Fire the stream with bounded concurrency; returns raw outcomes."""
    gate = asyncio.Semaphore(concurrency)

    async def one(entry):
        kind, name, body, must_admit = entry
        async with gate:
            status, response = await _request(host, port, "POST", "/run",
                                              body)
        return {"kind": kind, "name": name, "must_admit": must_admit,
                "status": status, "response": response}

    return await asyncio.gather(*[one(e) for e in stream])


def check_outcomes(outcomes, golden) -> dict:
    """The zero-failures / zero-corruption contract; returns tallies."""
    tallies = {"ok": 0, "rejected": 0, "corrupted": 0, "failed": 0,
               "warm": 0, "preempted": 0, "migrated": 0}
    for out in outcomes:
        response = out["response"]
        if not out["must_admit"]:
            assert out["status"] == 400, (out["name"], response)
            assert response["error"]["kind"] in ("assembly_error",
                                                 "lint_rejected"), response
            tallies["rejected"] += 1
            continue
        if out["status"] != 200 or response.get("status") != "ok":
            tallies["failed"] += 1
            continue
        tallies["ok"] += 1
        tallies["warm"] += bool(response.get("warm"))
        tallies["preempted"] += bool(response.get("preemptions"))
        tallies["migrated"] += bool(response.get("migrations"))
        if out["kind"] == "workload":
            if response["result"]["digest_sha"] != golden[out["name"]]:
                tallies["corrupted"] += 1
    return tallies


async def run_experiment(shards: int, total: int, iters: int,
                         quantum: int) -> dict:
    golden = golden_digests(iters)
    fleet = Fleet(FleetConfig(shards=shards, mode="process",
                              quantum=quantum)).start()
    server = await start_server(fleet, port=0)
    host, port = server.sockets[0].getsockname()[:2]
    try:
        outcomes = await drive(host, port, request_stream(total, iters))
        tallies = check_outcomes(outcomes, golden)
        _status, metrics = await _request(host, port, "GET", "/metrics")
    finally:
        server.close()
        fleet.stop()
    shards_used = {out["response"].get("shard") for out in outcomes
                   if out["response"].get("shard") is not None}
    return {"tallies": tallies, "metrics": metrics,
            "shards_used": sorted(shards_used), "requests": total}


def check_shape(result: dict, *, full: bool) -> None:
    tallies, metrics = result["tallies"], result["metrics"]
    assert tallies["failed"] == 0, f"failed requests: {tallies}"
    assert tallies["corrupted"] == 0, f"corrupted digests: {tallies}"
    assert metrics["requests"]["failed"] == 0, metrics["requests"]
    assert tallies["warm"] > 0, "no warm starts — the pool is dead"
    assert len(result["shards_used"]) > 1, \
        f"traffic never sharded: {result['shards_used']}"
    setup = metrics["setup"]
    if full:
        assert setup["warm_mean_seconds"] * 2 <= setup["cold_mean_seconds"], \
            f"warm start is not >=2x faster than cold boot: {setup}"
        assert metrics["requests"]["preemptions"] > 0, \
            "quantum never preempted anything"


def summary_lines(result: dict) -> str:
    m, t = result["metrics"], result["tallies"]
    lat, thr, setup = m["latency"], m["throughput"], m["setup"]
    speedup = (setup["cold_mean_seconds"] / setup["warm_mean_seconds"]
               if setup["warm_mean_seconds"] else 0.0)
    lines = [
        f"MSERVE traffic run: {result['requests']} requests, "
        f"{m['shards']} process shard(s), quantum {m['quantum']}",
        f"  ok {t['ok']}  rejected {t['rejected']}  failed {t['failed']}  "
        f"corrupted {t['corrupted']}",
        f"  warm-started {t['warm']}  preempted {t['preempted']}  "
        f"migrated {t['migrated']}",
        f"  throughput: {thr['machines_per_second']:.2f} machines/s, "
        f"{thr['aggregate_mips']:.3f} aggregate MIPS "
        f"({thr['busy_mips']:.3f} busy MIPS)",
        f"  latency: p50 {lat['p50_seconds'] * 1e3:.1f} ms, "
        f"p99 {lat['p99_seconds'] * 1e3:.1f} ms",
        f"  setup: cold {setup['cold_mean_seconds'] * 1e3:.2f} ms, "
        f"warm {setup['warm_mean_seconds'] * 1e3:.2f} ms "
        f"({speedup:.1f}x)",
    ]
    return "\n".join(lines)


def _json_payload(result: dict, *, smoke: bool) -> dict:
    m, t = result["metrics"], result["tallies"]
    setup = m["setup"]
    point = {
        "label": TRAJECTORY_LABEL,
        "shards": m["shards"],
        "requests": result["requests"],
        "ok": t["ok"], "rejected": t["rejected"],
        "failed": t["failed"], "corrupted": t["corrupted"],
        "machines_per_second": round(
            m["throughput"]["machines_per_second"], 3),
        "aggregate_mips": round(m["throughput"]["aggregate_mips"], 4),
        "busy_mips": round(m["throughput"]["busy_mips"], 4),
        "p50_ms": round(m["latency"]["p50_seconds"] * 1e3, 2),
        "p99_ms": round(m["latency"]["p99_seconds"] * 1e3, 2),
        "cold_setup_ms": round(setup["cold_mean_seconds"] * 1e3, 3),
        "warm_setup_ms": round(setup["warm_mean_seconds"] * 1e3, 3),
        "warm_speedup": round(
            setup["cold_mean_seconds"] / setup["warm_mean_seconds"], 2)
        if setup["warm_mean_seconds"] else None,
        "preemptions": m["requests"]["preemptions"],
        "migrations": m["requests"]["migrations"],
    }
    payload = {"benchmark": "serve", "smoke": smoke, "summary": point,
               "metrics": m}
    if not smoke:
        previous = {}
        if os.path.exists(JSON_PATH):
            with open(JSON_PATH) as fh:
                previous = json.load(fh)
        trajectory = [e for e in previous.get("trajectory", [])
                      if e.get("label") != TRAJECTORY_LABEL]
        trajectory.append(point)
        payload["trajectory"] = trajectory
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI mode: 2 shards, ~50 requests, "
                             "results to serve_smoke.json")
    args = parser.parse_args(argv)
    if args.smoke:
        shards, total, iters, quantum = 2, 50, ITERS["smoke"], 3_000
    else:
        shards, total, iters, quantum = 4, 200, ITERS["full"], 3_000
    result = asyncio.run(run_experiment(shards, total, iters, quantum))
    check_shape(result, full=not args.smoke)
    print(summary_lines(result))
    path = SMOKE_JSON_PATH if args.smoke else JSON_PATH
    payload = _json_payload(result, smoke=args.smoke)  # reads the old file
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {os.path.relpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
