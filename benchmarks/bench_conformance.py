"""MCONF conformance-campaign benchmark: contract plus throughput.

Like the MFI campaign benchmark, this asserts the subsystem's contract
rather than a guest-visible number (docs/CONFORMANCE.md):

* **conformance** — on a seeded sweep, zero divergences, zero
  decode-oracle disagreements, zero host errors: the five execution
  fast paths are the architecture;
* **bit-reproducibility** — running the identical seed list twice
  yields byte-identical report JSON;
* **guidance** — coverage-guided scheduling strictly dominates the
  unguided baseline on the same seed count (more buckets covered);
* **throughput** — seeds/sec and reference instructions/sec, so the
  cost of keeping the campaign in CI stays visible
  (``benchmarks/results/conformance.txt``).
"""

from __future__ import annotations

import json
import os
import time

from common import emit, run_once

from repro.conformance.campaign import (
    ConformanceConfig, failures, format_summary, measure_static_coverage,
    report_json, run_conformance,
)

SEEDS = tuple(range(24))


def run_experiment() -> dict:
    config = ConformanceConfig(seeds=SEEDS, workers=0, round_size=8,
                               oracle_random_words=5_000)
    start = time.perf_counter()
    report = run_conformance(config)
    elapsed = time.perf_counter() - start
    rerun = run_conformance(config)
    guided = measure_static_coverage(len(SEEDS), guided=True, round_size=8)
    unguided = measure_static_coverage(len(SEEDS), guided=False,
                                       round_size=8)
    return {
        "report": report,
        "identical": report_json(report) == report_json(rerun),
        "elapsed": elapsed,
        "guided_buckets": len(guided),
        "unguided_buckets": len(unguided),
    }


def check_shape(result: dict) -> None:
    report = result["report"]
    assert failures(report) == 0, "silent-corruption-class failure"
    assert report["summary"]["outcomes"]["pass"] == len(SEEDS), \
        report["summary"]
    assert result["identical"], "campaign report is not bit-reproducible"
    assert result["guided_buckets"] > result["unguided_buckets"], \
        "coverage guidance is not buying coverage"


def throughput_lines(result: dict) -> str:
    report = result["report"]
    elapsed = result["elapsed"]
    instret = report["summary"]["instret_total"]
    return (f"throughput: {len(SEEDS) / elapsed:.1f} seeds/s, "
            f"{instret / elapsed / 1e3:.0f}k reference instret/s "
            f"({len(SEEDS)} seeds in {elapsed:.2f}s, inline)\n"
            f"guidance: guided {result['guided_buckets']} vs unguided "
            f"{result['unguided_buckets']} buckets on {len(SEEDS)} seeds")


def test_conformance_campaign(benchmark):
    result = run_once(benchmark, run_experiment)
    check_shape(result)
    report = result["report"]
    emit("conformance",
         format_summary(report) + "\n" + throughput_lines(result))
    with open(os.path.join(os.path.dirname(__file__), "results",
                           "conformance.json"), "w") as fh:
        fh.write(report_json(report) + "\n")


if __name__ == "__main__":
    result = run_experiment()
    check_shape(result)
    print(format_summary(result["report"]))
    print(throughput_lines(result))
    print(json.dumps(result["report"]["summary"]["outcomes"]))
