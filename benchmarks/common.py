"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures (or a
quantified claim from the prose) and:

* prints the paper-style table (visible with ``pytest -s``);
* writes it to ``benchmarks/results/<name>.txt`` so the plain
  ``pytest benchmarks/ --benchmark-only`` run leaves artifacts behind;
* asserts the expected *shape* (who wins, roughly by how much), making the
  suite a regression test for the reproduction;
* feeds the heavy simulation into the ``benchmark`` fixture (one round) so
  pytest-benchmark reports wall-clock cost per experiment.
"""

from __future__ import annotations

import os
from typing import Optional

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> str:
    """Print *text* and persist it under benchmarks/results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return path


def run_once(benchmark, fn):
    """Run *fn* exactly once under the benchmark fixture and return its
    result (the experiments are deterministic; repetition adds nothing)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def perf_summary(machine, label: Optional[str] = None, top_traces: int = 5,
                 fault_report: Optional[dict] = None) -> str:
    """Format (and print) a machine's host-side perf counters.

    See :mod:`repro.cpu.stats` — these measure the simulator (translation
    cache behaviour, host MIPS), not the simulated machine.  When an
    MPROF sink is attached (``machine.set_profiling(True)``) the summary
    gains a "hottest traces" section: the top-*top_traces* traces by
    retired instructions with their per-mroutine attribution.  When a
    *fault_report* (an MFI campaign report, see :mod:`repro.fault`) is
    passed, the summary gains the campaign's outcome table.
    """
    header = f"host perf [{label or machine.name}]"
    text = header + "\n" + "-" * len(header) + "\n" + machine.perf.summary()
    text += _hottest_traces(machine, top_traces)
    if fault_report is not None:
        from repro.fault.campaign import format_summary

        text += "\n\nfault campaign (MFI)\n--------------------\n"
        text += format_summary(fault_report)
    print()
    print(text)
    return text


def _hottest_traces(machine, top: int) -> str:
    """The "hottest traces" section (empty string without a profiler)."""
    sink = getattr(machine, "profiler", None)
    if sink is None or not sink.total_traces:
        return ""
    from repro.profile.registry import MetricsRegistry

    rows = MetricsRegistry(machine).attribute(top=top)
    total = machine.perf.guest_instructions
    lines = [f"hottest traces     : ({sink.total_traces} retirements "
             f"recorded)"]
    for row in rows:
        share = row.instructions / total if total else 0.0
        lines.append(
            f"  {row.head_pc:#010x} {row.label:<24} "
            f"{row.instructions:>10} instrs ({share:5.1%})  "
            f"avg chain {row.avg_chain:.1f}"
        )
    return "\n" + "\n".join(lines)
