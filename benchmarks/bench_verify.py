"""MVTV static-verification benchmark: contract plus throughput.

Like the conformance-campaign benchmark, this asserts the subsystem's
contract rather than a guest-visible number (docs/VALIDATION.md):

* **translation** — every block MJIT compiles across the seed slice
  proves symbolically equivalent to its uop IR (zero findings);
* **elision** — every MAS-proven bounds fact in every bundled mcode
  application is independently re-derived (zero findings);
* **host** — the snapshot- and eviction-completeness lints are clean;
* **throughput** — blocks-validated/sec and wall time per pass, so the
  cost of keeping the verifier in CI stays visible
  (``benchmarks/results/verify.txt``).
"""

from __future__ import annotations

import json
import time

from common import emit, run_once

from repro.verify.corpus import validate_corpus
from repro.verify.elision import audit_apps
from repro.verify.hostlint import run_host_lints

SEEDS = tuple(range(24))


def run_experiment() -> dict:
    start = time.perf_counter()
    report = validate_corpus(SEEDS)
    t_translation = time.perf_counter() - start

    start = time.perf_counter()
    stats = {}
    elision_findings = audit_apps(stats=stats)
    t_elision = time.perf_counter() - start

    start = time.perf_counter()
    host_findings = run_host_lints()
    t_host = time.perf_counter() - start

    return {
        "report": report,
        "elision_findings": elision_findings,
        "elision_stats": stats,
        "host_findings": host_findings,
        "t_translation": t_translation,
        "t_elision": t_elision,
        "t_host": t_host,
    }


def check_shape(result: dict) -> None:
    report = result["report"]
    assert report.findings == [], "translation validation found a divergence"
    assert report.blocks_validated > 0, "corpus produced no tier-2 blocks"
    assert report.mem_blocks > 0 and report.mram_blocks > 0, \
        "corpus missed one of the two namespaces"
    assert result["elision_findings"] == [], "elision audit found a hole"
    assert result["elision_stats"]["claimed_sites"] > 0, \
        "no MAS-proven sites to audit"
    assert result["host_findings"] == [], "host lints found a violation"


def throughput_lines(result: dict) -> str:
    report = result["report"]
    t_tr = result["t_translation"]
    stats = result["elision_stats"]
    return (f"translation: {report.blocks_validated} unique blocks "
            f"({report.mem_blocks} mem, {report.mram_blocks} mram) proved "
            f"equivalent over {len(SEEDS)} seeds in {t_tr:.2f}s "
            f"({report.blocks_validated / t_tr:.1f} blocks/s "
            f"incl. corpus harvest)\n"
            f"elision: {stats['claimed_sites']} proven sites across "
            f"{stats['routines']} routines re-derived in "
            f"{result['t_elision']:.2f}s\n"
            f"host lints: clean in {result['t_host']:.2f}s")


def test_verify_throughput(benchmark):
    result = run_once(benchmark, run_experiment)
    check_shape(result)
    emit("verify", throughput_lines(result))


if __name__ == "__main__":
    result = run_experiment()
    check_shape(result)
    print(throughput_lines(result))
    print(json.dumps({
        "blocks_validated": result["report"].blocks_validated,
        "claimed_sites": result["elision_stats"]["claimed_sites"],
        "findings": 0,
    }))
