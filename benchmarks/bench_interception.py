"""E6 (§2.3): instruction interception dispatch cost.

"Our implementation allows intercepting any instruction with an mroutine.
For instance, developers can intercept loads and stores dynamically to
implement transactional memory or patch an insecure instruction at
runtime."

Two measurements:

* **dispatch + emulation cost** per intercepted instruction, swept over
  the fraction of instructions that match the rule (word loads are
  intercepted; byte loads are not, so mixing them sweeps the rate);
* **zero-cost-when-off**: with no rules installed, the matcher never even
  runs (identical cycles to a machine without the handler loaded) —
  interception is pay-as-you-go, unlike static patching.
"""

from repro import MRoutine, build_metal_machine
from repro.bench.report import format_table

from common import emit, run_once

OPS = 400

# Emulating load handler: rd := mem[rs1+imm] (faithful pass-through).
EMUL = MRoutine(name="emul", entry=1, source="""
    wmr  m13, t0
    wmr  m14, t1
    rmr  t0, m29
    srai t1, t0, 20
    rmr  t0, m25
    add  t0, t0, t1
    lw   t1, 0(t0)
    wmr  m27, t1
    rmr  t0, m29
    srli t0, t0, 7
    andi t0, t0, 31
    wmr  m26, t0
    rmr  t1, m14
    rmr  t0, m13
    mexitm
""", shared_mregs=(13, 14))

SETUP = MRoutine(name="setup", entry=0, source="""
    micept a0, a1
    mexit
""")


def _program(pct_intercepted: int) -> str:
    """OPS loads; pct of them are lw (intercepted), the rest lbu (not)."""
    lines = []
    for i in range(OPS):
        if (i * 100) // OPS < pct_intercepted:
            lines.append("    lw   t2, 0(s2)")
        else:
            lines.append("    lbu  t2, 0(s2)")
    body = "\n".join(lines)
    return f"""
_start:
    li   a0, 0x503           # match: opcode LOAD, funct3 2 (lw only)
    li   a1, MR_EMUL
    menter MR_SETUP
    li   s2, 0x3000
{body}
    halt
"""


def run_sweep():
    rows = []
    base_cycles = None
    for pct in (0, 25, 50, 100):
        m = build_metal_machine([SETUP, EMUL], engine="pipeline")
        m.load_and_run(_program(pct), max_instructions=5_000_000)
        hits = m.core.metal.intercept.hits
        if pct == 0:
            base_cycles = m.cycles
            rows.append([pct, hits, m.cycles, 0.0])
        else:
            per_hit = (m.cycles - base_cycles) / hits
            rows.append([pct, hits, m.cycles, per_hit])
    return rows


def run_off_cost():
    """No rules installed: cycles identical to no-interception machine."""
    prog = f"""
_start:
    li   s2, 0x3000
    li   s0, {OPS}
loop:
    lw   t2, 0(s2)
    addi s0, s0, -1
    bnez s0, loop
    halt
"""
    with_handler = build_metal_machine([SETUP, EMUL], engine="pipeline")
    with_handler.load_and_run(prog, max_instructions=5_000_000)
    bare = build_metal_machine(
        [MRoutine(name="noop", entry=0, source="mexit\n")], engine="pipeline",
    )
    bare.load_and_run(prog, max_instructions=5_000_000)
    return with_handler.cycles, bare.cycles


def test_interception_dispatch(benchmark):
    def experiment():
        return run_sweep(), run_off_cost()

    (rows, (loaded, bare)) = run_once(benchmark, experiment)
    emit("e6_interception", format_table(
        f"E6: interception dispatch + emulation cost "
        f"({OPS} loads, rule matches word loads only, pipeline engine)",
        ["% intercepted", "hits", "total cycles", "cycles/intercept"],
        rows,
        note=f"Interception OFF is free: {loaded} cycles with the handler "
             f"loaded but no rules vs {bare} cycles without it.",
    ))
    assert rows[0][1] == 0                      # 0%: no hits
    assert rows[-1][1] == OPS                   # 100%: all hits
    per_hit = [r[3] for r in rows if r[3]]
    # dispatch cost is flat (per-hit, not per-rule-scan heavy)
    assert max(per_hit) - min(per_hit) < 6
    # emulation via MRAM handler: tens of cycles, not hundreds
    assert all(5 < c < 60 for c in per_hit)
    # interception disabled costs nothing at all
    assert loaded == bare
