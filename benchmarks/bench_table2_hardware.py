"""Table 2: hardware resources for adding Metal to the 5-stage processor.

Paper: baseline 170,264 wires / 180,546 cells; Metal 197,705 / 206,384;
+16.1% / +14.3%.  The baseline row of our structural model is calibrated
to the paper (SRAM factors fitted once); the Metal *delta* is a prediction
of the netlist structure and must land near the paper's percentages with
the same ordering (wires grow more than cells).
"""

from repro.synthesis.report import (
    PAPER_CELL_CHANGE,
    PAPER_WIRE_CHANGE,
    generate_table2,
)

from common import emit, run_once


def test_table2(benchmark):
    report = run_once(benchmark, generate_table2)
    emit("table2_hardware", report.format(with_paper=True))

    assert abs(report.cell_change_pct - PAPER_CELL_CHANGE) < 2.5
    assert abs(report.wire_change_pct - PAPER_WIRE_CHANGE) < 2.5
    assert report.wire_change_pct > report.cell_change_pct  # paper ordering
