"""Host-throughput benchmark for the execution engines.

Unlike the other benchmarks (which regenerate the paper's guest-visible
numbers), this one measures the *simulator*: guest instructions retired
per host second (host MIPS) with the predecoded translation cache
(:mod:`repro.cpu.tcache`) on and off, across three workload shapes:

* **tight_loop** — straight-line ALU work in a hot loop: the tcache's
  best case (one block per iteration, 100% hit rate after warmup);
* **syscall_heavy** — every iteration delivers an ECALL to an mroutine
  and returns: stresses the MRAM block namespace and Metal transitions;
* **intercept_heavy** — every iteration's ``lw`` is intercepted and
  emulated by an mroutine: the tcache's worst case (interception active
  disables normal-mode blocks entirely).

The tcache is architecture-invisible, so for every workload and engine
the guest results (``RunResult.instructions`` / ``cycles``) must be
bit-identical with the flag on and off — this file asserts that, plus
the headline ≥2× host-MIPS win for the functional engine on the tight
loop.  Results land in ``BENCH_host_throughput.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_host_throughput.py``)
or via pytest.  ``--smoke`` runs a <30s subset for CI: it checks the
tight-loop hit rate (≥90%) and on/off result equality, but skips the
wall-clock speedup assertion (too noisy for shared runners).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

from repro import MRoutine, build_metal_machine
from repro.cpu.exceptions import Cause

from common import perf_summary

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_host_throughput.json")

#: mroutine for the tight loop machine (never invoked; keeps the machine
#: shape identical to the others).
NOOP = MRoutine(name="noop", entry=0, source="mexit\n")

#: ECALL handler: skip the ecall (delivery resumes at epc) and return.
SYS = MRoutine(name="sys", entry=0, source="""
    wmr  m13, t0
    rmr  t0, m31
    addi t0, t0, 4
    wmr  m31, t0
    rmr  t0, m13
    mexit
""", shared_mregs=(13,))

#: Boot mroutine installing the ``lw`` intercept rule (a0=spec, a1=entry).
SETUP = MRoutine(name="setup", entry=0, source="""
    micept a0, a1
    mexit
""")

#: Emulating ``lw`` handler (same shape as bench_interception's).
EMUL = MRoutine(name="emul", entry=1, source="""
    wmr  m13, t0
    wmr  m14, t1
    rmr  t0, m29
    srai t1, t0, 20
    rmr  t0, m25
    add  t0, t0, t1
    lw   t1, 0(t0)
    wmr  m27, t1
    rmr  t0, m29
    srli t0, t0, 7
    andi t0, t0, 31
    wmr  m26, t0
    rmr  t1, m14
    rmr  t0, m13
    mexitm
""", shared_mregs=(13, 14))


def _tight_loop(iters: int) -> str:
    return f"""
_start:
    li t0, {iters}
loop:
    addi t1, t1, 1
    addi t2, t2, 2
    xor  t3, t1, t2
    slli t4, t1, 3
    add  t5, t3, t4
    srli t6, t5, 1
    or   s2, t5, t6
    and  s3, s2, t3
    sub  s4, s3, t1
    addi t0, t0, -1
    bnez t0, loop
    halt
"""


def _syscall_loop(iters: int) -> str:
    return f"""
_start:
    li t0, {iters}
loop:
    ecall
    addi t0, t0, -1
    bnez t0, loop
    halt
"""


def _intercept_loop(iters: int) -> str:
    return f"""
_start:
    li   a0, 0x503           # match: opcode LOAD, funct3 2 (lw only)
    li   a1, MR_EMUL
    menter MR_SETUP
    li   s2, 0x3000
    li   t0, {iters}
loop:
    lw   t2, 0(s2)
    addi t0, t0, -1
    bnez t0, loop
    halt
"""


def _build(workload: str, engine: str):
    """Build the machine for *workload*.  Always built with the tcache
    enabled; measurements toggle it with ``Machine.set_tcache`` to show
    the flag is switchable inside one process."""
    if workload == "tight_loop":
        return build_metal_machine([NOOP], engine=engine, with_caches=False)
    if workload == "syscall_heavy":
        m = build_metal_machine([SYS], engine=engine, with_caches=False)
        m.route_cause(Cause.ECALL, "sys")
        return m
    if workload == "intercept_heavy":
        return build_metal_machine([SETUP, EMUL], engine=engine,
                                   with_caches=False)
    raise ValueError(workload)


_PROGRAMS = {
    "tight_loop": _tight_loop,
    "syscall_heavy": _syscall_loop,
    "intercept_heavy": _intercept_loop,
}


def _measure(workload: str, engine: str, tcache: bool, iters: int,
             reps: int) -> dict:
    """Best-of-*reps* host MIPS for one configuration (fresh machine per
    rep; deterministic guest results are cross-checked across reps)."""
    source = _PROGRAMS[workload](iters)
    best_mips = 0.0
    ref = None
    hit_rate = 0.0
    last_machine = None
    for _ in range(reps):
        machine = _build(workload, engine)
        machine.set_tcache(tcache)
        host0 = perf_counter()
        result = machine.load_and_run(source, max_instructions=50_000_000)
        host = perf_counter() - host0
        outcome = (result.instructions, result.cycles)
        if ref is None:
            ref = outcome
        elif outcome != ref:
            raise AssertionError(
                f"{workload}/{engine}: non-deterministic guest results "
                f"{outcome} vs {ref}"
            )
        mips = result.instructions / host / 1e6 if host > 0 else 0.0
        if mips >= best_mips or last_machine is None:
            best_mips = mips
            hit_rate = machine.perf.tcache.hit_rate
            last_machine = machine
    perf_summary(last_machine,
                 f"{workload}/{engine}/tcache={'on' if tcache else 'off'}")
    return {
        "mips": round(best_mips, 4),
        "instructions": ref[0],
        "cycles": ref[1],
        "hit_rate": round(hit_rate, 4),
    }


def run_suite(iters: dict, reps: int, engines=("functional", "pipeline")):
    results = {}
    for workload, n in iters.items():
        results[workload] = {}
        for engine in engines:
            off = _measure(workload, engine, False, n, reps)
            on = _measure(workload, engine, True, n, reps)
            speedup = on["mips"] / off["mips"] if off["mips"] else 0.0
            results[workload][engine] = {
                "iterations": n,
                "tcache_off": off,
                "tcache_on": on,
                "speedup": round(speedup, 3),
            }
            # The tcache is guest-invisible: identical results either way.
            for key in ("instructions", "cycles"):
                assert on[key] == off[key], (
                    f"{workload}/{engine}: tcache changed guest-visible "
                    f"{key}: on={on[key]} off={off[key]}"
                )
    return results


def _emit_json(results: dict) -> str:
    payload = {"benchmark": "host_throughput", "results": results}
    path = os.path.abspath(JSON_PATH)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _print_table(results: dict) -> None:
    print()
    print(f"{'workload':<18} {'engine':<11} {'off MIPS':>9} {'on MIPS':>9} "
          f"{'speedup':>8} {'hit rate':>9}")
    for workload, engines in results.items():
        for engine, row in engines.items():
            print(f"{workload:<18} {engine:<11} "
                  f"{row['tcache_off']['mips']:>9.3f} "
                  f"{row['tcache_on']['mips']:>9.3f} "
                  f"{row['speedup']:>7.2f}x "
                  f"{row['tcache_on']['hit_rate']:>8.1%}")
    print()


def run_full() -> dict:
    iters = {
        "tight_loop": 100_000,
        "syscall_heavy": 20_000,
        "intercept_heavy": 15_000,
    }
    results = run_suite(iters, reps=3)
    _print_table(results)
    path = _emit_json(results)
    print(f"results written to {path}")
    tight = results["tight_loop"]["functional"]
    assert tight["speedup"] >= 2.0, (
        f"tight-loop functional speedup {tight['speedup']}x < 2x"
    )
    assert tight["tcache_on"]["hit_rate"] >= 0.90, (
        f"tight-loop hit rate {tight['tcache_on']['hit_rate']:.1%} < 90%"
    )
    return results


def run_smoke() -> dict:
    """CI subset: functional engine, small iteration counts, one rep.

    Asserts the structural properties (hit rate, on/off equality) but not
    the wall-clock speedup, which is too noisy for shared runners.
    """
    iters = {
        "tight_loop": 20_000,
        "syscall_heavy": 2_000,
        "intercept_heavy": 1_500,
    }
    results = run_suite(iters, reps=1, engines=("functional",))
    _print_table(results)
    tight = results["tight_loop"]["functional"]
    assert tight["tcache_on"]["hit_rate"] >= 0.90, (
        f"tight-loop hit rate {tight['tcache_on']['hit_rate']:.1%} < 90%"
    )
    return results


def test_host_throughput_smoke(benchmark):
    """Pytest entry point: the smoke subset under the benchmark fixture."""
    benchmark.pedantic(run_smoke, rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI subset (<30s, no speedup assertion)")
    args = parser.parse_args(argv)
    try:
        if args.smoke:
            run_smoke()
        else:
            run_full()
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
