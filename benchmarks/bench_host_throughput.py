"""Host-throughput benchmark for the execution engines.

Unlike the other benchmarks (which regenerate the paper's guest-visible
numbers), this one measures the *simulator*: guest instructions retired
per host second (host MIPS) with the predecoded translation cache
(:mod:`repro.cpu.tcache`) on and off, across three workload shapes:

* **tight_loop** — straight-line ALU work in a hot loop: the tcache's
  best case (one block per iteration, 100% hit rate after warmup);
* **syscall_heavy** — every iteration delivers an ECALL to an mroutine
  and returns: stresses the MRAM block namespace and Metal transitions;
* **intercept_heavy** — every iteration's ``lw`` is intercepted and
  emulated by an mroutine: the tcache's worst case (interception active
  disables normal-mode blocks entirely);
* **chain_trampoline** — straight-line work split across blocks glued by
  unconditional jumps: the superblock chainer's best case (one chained
  trace per iteration instead of three dispatches);
* **mcode_heavy** — every iteration ``menter``s a pure mroutine that
  spins in MRAM: the best case for the MAS-driven unguarded pure loop
  (PR 3), which skips the per-store eviction guards inside routines the
  analyzer proved free of RAM writes.

Since PR 2 every tcache-on configuration is measured with superblock
chaining disabled (``tcache_nochain``, the PR-1 behaviour) and enabled;
since PR 3 the chained configuration is additionally measured with the
analysis-driven pure mram loop off (``tcache_nopure``) and on
(``tcache_on``).  The JSON records the cache win over the interpreter
(``speedup``), the chaining win over the plain cache
(``chain_speedup``) and the purity win over the guarded chained cache
(``pure_speedup``).  A ``trajectory`` list in the JSON keeps the
tight-loop functional numbers of every PR for trend tracking.

The tcache is architecture-invisible, so for every workload and engine
the guest results (``RunResult.instructions`` / ``cycles``) must be
bit-identical across all four modes — this file asserts that, plus the
headline wins for the functional engine on the tight loop: ≥2.6× over
the interpreter and ≥1.3× over the unchained cache.  Results land in
``BENCH_host_throughput.json`` at the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_host_throughput.py``)
or via pytest.  ``--smoke`` runs a <30s subset for CI: it checks the
tight-loop hit rate (≥90%), three-way result equality and that chains
actually engage, but skips the wall-clock speedup assertions (too noisy
for shared runners); its results land in
``BENCH_host_throughput_smoke.json`` (uploaded as a CI artifact) so the
committed full-run JSON is never clobbered by a smoke run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

from repro import MRoutine, build_metal_machine
from repro.cpu.exceptions import Cause

from common import perf_summary

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_host_throughput.json")
SMOKE_JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                               "BENCH_host_throughput_smoke.json")
#: Label this PR's tight-loop numbers carry in the JSON trajectory.
TRAJECTORY_LABEL = "pr3_mas_purity"

#: mroutine for the tight loop machine (never invoked; keeps the machine
#: shape identical to the others).
NOOP = MRoutine(name="noop", entry=0, source="mexit\n")

#: ECALL handler: skip the ecall (delivery resumes at epc) and return.
SYS = MRoutine(name="sys", entry=0, source="""
    wmr  m13, t0
    rmr  t0, m31
    addi t0, t0, 4
    wmr  m31, t0
    rmr  t0, m13
    mexit
""", shared_mregs=(13,))

#: Boot mroutine installing the ``lw`` intercept rule (a0=spec, a1=entry).
SETUP = MRoutine(name="setup", entry=0, source="""
    micept a0, a1
    mexit
""")

#: Emulating ``lw`` handler (same shape as bench_interception's).
EMUL = MRoutine(name="emul", entry=1, source="""
    wmr  m13, t0
    wmr  m14, t1
    rmr  t0, m29
    srai t1, t0, 20
    rmr  t0, m25
    add  t0, t0, t1
    lw   t1, 0(t0)
    wmr  m27, t1
    rmr  t0, m29
    srli t0, t0, 7
    andi t0, t0, 31
    wmr  m26, t0
    rmr  t1, m14
    rmr  t0, m13
    mexitm
""", shared_mregs=(13, 14))

#: Pure spin mroutine for the mcode_heavy workload: MAS proves it free
#: of RAM access, so its blocks dispatch through the unguarded loop.
SPIN = MRoutine(name="spin", entry=0, source="""
    li   t0, 24
spin_loop:
    addi t1, t1, 3
    xor  t2, t1, t0
    addi t0, t0, -1
    bnez t0, spin_loop
    mexit
""")


def _tight_loop(iters: int) -> str:
    return f"""
_start:
    li t0, {iters}
loop:
    addi t1, t1, 1
    addi t2, t2, 2
    xor  t3, t1, t2
    slli t4, t1, 3
    add  t5, t3, t4
    srli t6, t5, 1
    or   s2, t5, t6
    and  s3, s2, t3
    sub  s4, s3, t1
    addi t0, t0, -1
    bnez t0, loop
    halt
"""


def _syscall_loop(iters: int) -> str:
    return f"""
_start:
    li t0, {iters}
loop:
    ecall
    addi t0, t0, -1
    bnez t0, loop
    halt
"""


def _chain_trampoline(iters: int) -> str:
    """Straight-line ALU work spread over three blocks joined by
    unconditional jumps plus the loop's backward branch — every block
    transition is chainable."""
    return f"""
_start:
    li t0, {iters}
loop:
    addi t1, t1, 1
    xor  t3, t1, t2
    slli t4, t1, 3
    j    hop1
hop1:
    add  t5, t3, t4
    srli t6, t5, 1
    or   s2, t5, t6
    j    hop2
hop2:
    and  s3, s2, t3
    sub  s4, s3, t1
    addi t0, t0, -1
    bnez t0, loop
    halt
"""


def _mcode_loop(iters: int) -> str:
    return f"""
_start:
    li s0, {iters}
loop:
    menter MR_SPIN
    addi s0, s0, -1
    bnez s0, loop
    halt
"""


def _intercept_loop(iters: int) -> str:
    return f"""
_start:
    li   a0, 0x503           # match: opcode LOAD, funct3 2 (lw only)
    li   a1, MR_EMUL
    menter MR_SETUP
    li   s2, 0x3000
    li   t0, {iters}
loop:
    lw   t2, 0(s2)
    addi t0, t0, -1
    bnez t0, loop
    halt
"""


def _build(workload: str, engine: str):
    """Build the machine for *workload*.  Always built with the tcache
    enabled; measurements toggle it with ``Machine.set_tcache`` to show
    the flag is switchable inside one process."""
    if workload in ("tight_loop", "chain_trampoline"):
        return build_metal_machine([NOOP], engine=engine, with_caches=False)
    if workload == "syscall_heavy":
        m = build_metal_machine([SYS], engine=engine, with_caches=False)
        m.route_cause(Cause.ECALL, "sys")
        return m
    if workload == "intercept_heavy":
        return build_metal_machine([SETUP, EMUL], engine=engine,
                                   with_caches=False)
    if workload == "mcode_heavy":
        return build_metal_machine([SPIN], engine=engine, with_caches=False)
    raise ValueError(workload)


_PROGRAMS = {
    "tight_loop": _tight_loop,
    "chain_trampoline": _chain_trampoline,
    "syscall_heavy": _syscall_loop,
    "intercept_heavy": _intercept_loop,
    "mcode_heavy": _mcode_loop,
}

#: Measurement modes: (tcache, chaining, pure loop).
_MODES = {
    "tcache_off": (False, False, False),
    "tcache_nochain": (True, False, False),
    "tcache_nopure": (True, True, False),
    "tcache_on": (True, True, True),
}


def _measure(workload: str, engine: str, mode: str, iters: int,
             reps: int) -> dict:
    """Best-of-*reps* host MIPS for one configuration (fresh machine per
    rep; deterministic guest results are cross-checked across reps)."""
    tcache, chain, pure = _MODES[mode]
    source = _PROGRAMS[workload](iters)
    best_mips = 0.0
    ref = None
    best_stats = None
    last_machine = None
    for _ in range(reps):
        machine = _build(workload, engine)
        machine.set_tcache(tcache)
        machine.set_tcache_chaining(chain)
        machine.set_tcache_pure_loop(pure)
        host0 = perf_counter()
        result = machine.load_and_run(source, max_instructions=50_000_000)
        host = perf_counter() - host0
        outcome = (result.instructions, result.cycles)
        if ref is None:
            ref = outcome
        elif outcome != ref:
            raise AssertionError(
                f"{workload}/{engine}: non-deterministic guest results "
                f"{outcome} vs {ref}"
            )
        mips = result.instructions / host / 1e6 if host > 0 else 0.0
        if mips >= best_mips or last_machine is None:
            best_mips = mips
            best_stats = machine.perf.tcache
            last_machine = machine
    perf_summary(last_machine, f"{workload}/{engine}/{mode}")
    row = {
        "mips": round(best_mips, 4),
        "instructions": ref[0],
        "cycles": ref[1],
        "hit_rate": round(best_stats.hit_rate, 4),
    }
    if tcache and chain:
        row["chains"] = {
            "links": best_stats.chain_links,
            "hits": best_stats.chain_hits,
            "breaks": best_stats.chain_breaks,
            "longest": best_stats.chain_longest,
        }
    if pure:
        row["pure"] = {
            "blocks": best_stats.pure_blocks,
            "instructions": best_stats.pure_fast_instructions,
        }
    return row


def run_suite(iters: dict, reps: int, engines=("functional", "pipeline")):
    results = {}
    for workload, n in iters.items():
        results[workload] = {}
        for engine in engines:
            row = {"iterations": n}
            for mode in _MODES:
                row[mode] = _measure(workload, engine, mode, n, reps)
            off, nochain, nopure, on = (
                row["tcache_off"], row["tcache_nochain"],
                row["tcache_nopure"], row["tcache_on"])
            row["speedup"] = round(
                on["mips"] / off["mips"] if off["mips"] else 0.0, 3)
            row["chain_speedup"] = round(
                on["mips"] / nochain["mips"] if nochain["mips"] else 0.0, 3)
            row["pure_speedup"] = round(
                on["mips"] / nopure["mips"] if nopure["mips"] else 0.0, 3)
            results[workload][engine] = row
            # The tcache (chained, pure or not) is guest-invisible:
            # identical results in all four modes.
            for mode in ("tcache_nochain", "tcache_nopure", "tcache_on"):
                for key in ("instructions", "cycles"):
                    assert row[mode][key] == off[key], (
                        f"{workload}/{engine}/{mode}: tcache changed "
                        f"guest-visible {key}: {row[mode][key]} vs "
                        f"{off[key]}"
                    )
    return results


def _load_previous(path: str):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _trajectory(results: dict, previous) -> list:
    """Per-PR history of the tight-loop functional numbers.

    Carries the previous file's trajectory forward; a pre-trajectory file
    (PR 1) is bootstrapped from its recorded results.  The current run
    replaces any earlier entry with the same label.
    """
    trajectory = list(previous.get("trajectory", [])) if previous else []
    if not trajectory and previous:
        old = (previous.get("results", {})
               .get("tight_loop", {}).get("functional"))
        if old and "tcache_on" in old:
            trajectory.append({
                "label": "pr1_tcache",
                "tight_loop_functional": {
                    "tcache_off_mips": old["tcache_off"]["mips"],
                    "tcache_on_mips": old["tcache_on"]["mips"],
                    "speedup": old["speedup"],
                },
            })
    tight = results.get("tight_loop", {}).get("functional")
    if tight:
        entry = {
            "label": TRAJECTORY_LABEL,
            "tight_loop_functional": {
                "tcache_off_mips": tight["tcache_off"]["mips"],
                "tcache_nochain_mips": tight["tcache_nochain"]["mips"],
                "tcache_on_mips": tight["tcache_on"]["mips"],
                "speedup": tight["speedup"],
                "chain_speedup": tight["chain_speedup"],
            },
        }
        mcode = results.get("mcode_heavy", {}).get("functional")
        if mcode:
            entry["mcode_heavy_functional"] = {
                "tcache_nopure_mips": mcode["tcache_nopure"]["mips"],
                "tcache_on_mips": mcode["tcache_on"]["mips"],
                "pure_speedup": mcode["pure_speedup"],
            }
        trajectory = [e for e in trajectory
                      if e.get("label") != entry["label"]]
        trajectory.append(entry)
    return trajectory


def _emit_json(results: dict, json_path: str = JSON_PATH) -> str:
    path = os.path.abspath(json_path)
    payload = {
        "benchmark": "host_throughput",
        "results": results,
        "trajectory": _trajectory(results, _load_previous(path)),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _print_table(results: dict) -> None:
    print()
    print(f"{'workload':<18} {'engine':<11} {'off MIPS':>9} "
          f"{'nochain':>9} {'nopure':>9} {'on MIPS':>9} {'speedup':>8} "
          f"{'chain':>7} {'pure':>7} {'hit rate':>9}")
    for workload, engines in results.items():
        for engine, row in engines.items():
            print(f"{workload:<18} {engine:<11} "
                  f"{row['tcache_off']['mips']:>9.3f} "
                  f"{row['tcache_nochain']['mips']:>9.3f} "
                  f"{row['tcache_nopure']['mips']:>9.3f} "
                  f"{row['tcache_on']['mips']:>9.3f} "
                  f"{row['speedup']:>7.2f}x "
                  f"{row['chain_speedup']:>6.2f}x "
                  f"{row['pure_speedup']:>6.2f}x "
                  f"{row['tcache_on']['hit_rate']:>8.1%}")
    print()


def run_full() -> dict:
    iters = {
        "tight_loop": 100_000,
        "chain_trampoline": 60_000,
        "syscall_heavy": 20_000,
        "intercept_heavy": 15_000,
        "mcode_heavy": 15_000,
    }
    results = run_suite(iters, reps=3)
    _print_table(results)
    path = _emit_json(results)
    print(f"results written to {path}")
    tight = results["tight_loop"]["functional"]
    assert tight["speedup"] >= 2.6, (
        f"tight-loop functional speedup {tight['speedup']}x < 2.6x"
    )
    assert tight["chain_speedup"] >= 1.3, (
        f"tight-loop chaining speedup {tight['chain_speedup']}x < 1.3x "
        f"over the unchained cache"
    )
    assert tight["tcache_on"]["hit_rate"] >= 0.90, (
        f"tight-loop hit rate {tight['tcache_on']['hit_rate']:.1%} < 90%"
    )
    tramp = results["chain_trampoline"]["functional"]
    assert tramp["chain_speedup"] >= 1.2, (
        f"trampoline chaining speedup {tramp['chain_speedup']}x < 1.2x"
    )
    assert tramp["tcache_on"]["chains"]["hits"] > 0, (
        "trampoline workload never followed a chain link"
    )
    mcode = results["mcode_heavy"]["functional"]
    assert mcode["tcache_on"]["pure"]["instructions"] > 0, (
        "mcode_heavy workload never ran through the pure loop"
    )
    assert mcode["pure_speedup"] >= 1.05, (
        f"mcode_heavy pure-loop speedup {mcode['pure_speedup']}x < 1.05x "
        f"over the guarded chained cache"
    )
    return results


def run_smoke() -> dict:
    """CI subset: functional engine, small iteration counts, one rep.

    Asserts the structural properties (hit rate, three-way equality,
    chains engaging) but not the wall-clock speedups, which are too
    noisy for shared runners.  Writes its numbers to a separate smoke
    JSON so the committed full-run results stay untouched.
    """
    iters = {
        "tight_loop": 20_000,
        "chain_trampoline": 10_000,
        "syscall_heavy": 2_000,
        "intercept_heavy": 1_500,
        "mcode_heavy": 2_000,
    }
    results = run_suite(iters, reps=1, engines=("functional",))
    _print_table(results)
    path = _emit_json(results, json_path=SMOKE_JSON_PATH)
    print(f"smoke results written to {path}")
    tight = results["tight_loop"]["functional"]
    assert tight["tcache_on"]["hit_rate"] >= 0.90, (
        f"tight-loop hit rate {tight['tcache_on']['hit_rate']:.1%} < 90%"
    )
    for workload in ("tight_loop", "chain_trampoline"):
        chains = results[workload]["functional"]["tcache_on"]["chains"]
        assert chains["hits"] > 0, (
            f"{workload}: chaining never engaged (links={chains['links']})"
        )
    pure = results["mcode_heavy"]["functional"]["tcache_on"]["pure"]
    assert pure["instructions"] > 0, (
        f"mcode_heavy: the pure loop never engaged (blocks={pure['blocks']})"
    )
    return results


def test_host_throughput_smoke(benchmark):
    """Pytest entry point: the smoke subset under the benchmark fixture."""
    benchmark.pedantic(run_smoke, rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI subset (<30s, no speedup assertion)")
    args = parser.parse_args(argv)
    try:
        if args.smoke:
            run_smoke()
        else:
            run_full()
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
