"""Host-throughput benchmark for the execution engines.

Unlike the other benchmarks (which regenerate the paper's guest-visible
numbers), this one measures the *simulator*: guest instructions retired
per host second (host MIPS) with the predecoded translation cache
(:mod:`repro.cpu.tcache`) on and off, across three workload shapes:

* **tight_loop** — straight-line ALU work in a hot loop: the tcache's
  best case (one block per iteration, 100% hit rate after warmup);
* **syscall_heavy** — every iteration delivers an ECALL to an mroutine
  and returns: stresses the MRAM block namespace and Metal transitions;
* **intercept_heavy** — every iteration's ``lw`` is intercepted and
  emulated by an mroutine: the tcache's worst case (interception active
  disables normal-mode blocks entirely);
* **chain_trampoline** — straight-line work split across blocks glued by
  unconditional jumps: the superblock chainer's best case (one chained
  trace per iteration instead of three dispatches);
* **poly_branch** — a branch whose target flips every iteration: the
  polymorphic target map's showcase (PR 4; the monomorphic single-slot
  chainer of PR 2 broke and relinked this chain on every flip);
* **mcode_heavy** — every iteration ``menter``s a pure mroutine that
  spins in MRAM: the best case for the MAS-driven unguarded pure loop
  (PR 3), which skips the per-store eviction guards inside routines the
  analyzer proved free of RAM writes.

The workload programs and machine shapes live in
:mod:`repro.profile.workloads`, shared with ``python -m repro profile``
so a profiled workload and a benchmarked one are the same program.

Since PR 2 every tcache-on configuration is measured with superblock
chaining disabled (``tcache_nochain``, the PR-1 behaviour) and enabled;
since PR 3 the chained configuration is additionally measured with the
analysis-driven pure mram loop off (``tcache_nopure``) and on
(``tcache_on``); since PR 6 the full configuration is measured once
more with the MJIT tier-2 compiler on (``tcache_jit`` — hot blocks
recompiled to specialized Python source, see :mod:`repro.cpu.jit`;
drop the mode with ``--nojit``).  The JSON records the cache win over
the interpreter (``speedup``), the chaining win over the plain cache
(``chain_speedup``), the purity win over the guarded chained cache
(``pure_speedup``) and the tier-2 win over the closure tier
(``jit_speedup``).  A ``trajectory`` list in the JSON keeps the
tight-loop functional numbers of every PR for trend tracking.

Since PR 4 the JSON also records the MPROF numbers:

* ``profiler`` — tight-loop functional MIPS with the trace event sink
  detached vs attached.  Detached must track the PR-3 trajectory entry
  (the sink costs one pointer test per retired trace when off);
  attached overhead is asserted ≤15% in the full run.
* ``preformation`` — mcode_heavy functional MIPS with the dynamic
  chainer warming up on its own vs profile-guided superblock
  preformation (``Machine.preform_superblocks``) seeding the blocks and
  links at build time.  Guest results must be bit-identical; the MIPS
  delta is recorded win or lose (preformation buys first-delivery
  latency, not steady-state throughput, so expect ~parity on a
  long-running loop).  Since PR 6 a third configuration combines
  preformation with MJIT: the planned loop heads are tier-2 compiled at
  build time, so the *first* delivery already runs through compiled
  code — asserted by checking ``jit_blocks`` before the run starts.

The tcache is architecture-invisible, so for every workload and engine
the guest results (``RunResult.instructions`` / ``cycles``) must be
bit-identical across all five modes — this file asserts that, plus the
headline wins for the functional engine on the tight loop: ≥2.6× over
the interpreter, ≥1.3× over the unchained cache, and with MJIT on a
tier-2 dispatch share ≥90% and ≥6.16 MIPS absolute (2× the PR-4
trajectory number).  Results land in ``BENCH_host_throughput.json`` at
the repo root.

Run directly (``PYTHONPATH=src python benchmarks/bench_host_throughput.py``)
or via pytest.  ``--smoke`` runs a <30s subset for CI: it checks the
tight-loop hit rate (≥90%), three-way result equality and that chains
actually engage, but skips the wall-clock speedup assertions (too noisy
for shared runners); its results land in
``BENCH_host_throughput_smoke.json`` (uploaded as a CI artifact) so the
committed full-run JSON is never clobbered by a smoke run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

from repro.profile.workloads import build_workload, workload_source

from common import perf_summary

JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                         "BENCH_host_throughput.json")
SMOKE_JSON_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                               "BENCH_host_throughput_smoke.json")
#: Label this PR's tight-loop numbers carry in the JSON trajectory.
TRAJECTORY_LABEL = "pr6_mjit"


def _build(workload: str, engine: str):
    """Build the machine for *workload* (see repro.profile.workloads).
    Always built with the tcache enabled; measurements toggle it with
    ``Machine.set_tcache`` to show the flag is switchable inside one
    process."""
    return build_workload(workload, engine=engine)


#: Measurement modes: (tcache, chaining, pure loop, jit).
_MODES = {
    "tcache_off": (False, False, False, False),
    "tcache_nochain": (True, False, False, False),
    "tcache_nopure": (True, True, False, False),
    "tcache_on": (True, True, True, False),
    "tcache_jit": (True, True, True, True),
}


def _modes(jit: bool = True):
    """The mode names to measure (``--nojit`` drops ``tcache_jit``)."""
    return [m for m in _MODES if jit or m != "tcache_jit"]


def _measure(workload: str, engine: str, mode: str, iters: int,
             reps: int) -> dict:
    """Best-of-*reps* host MIPS for one configuration (fresh machine per
    rep; deterministic guest results are cross-checked across reps)."""
    tcache, chain, pure, jit = _MODES[mode]
    source = workload_source(workload, iters)
    best_mips = 0.0
    ref = None
    best_stats = None
    last_machine = None
    for _ in range(reps):
        machine = _build(workload, engine)
        machine.set_tcache(tcache)
        machine.set_tcache_chaining(chain)
        machine.set_tcache_pure_loop(pure)
        machine.set_tcache_jit(jit)
        host0 = perf_counter()
        result = machine.load_and_run(source, max_instructions=50_000_000)
        host = perf_counter() - host0
        outcome = (result.instructions, result.cycles)
        if ref is None:
            ref = outcome
        elif outcome != ref:
            raise AssertionError(
                f"{workload}/{engine}: non-deterministic guest results "
                f"{outcome} vs {ref}"
            )
        mips = result.instructions / host / 1e6 if host > 0 else 0.0
        if mips >= best_mips or last_machine is None:
            best_mips = mips
            best_stats = machine.perf.tcache
            last_machine = machine
    perf_summary(last_machine, f"{workload}/{engine}/{mode}")
    row = {
        "mips": round(best_mips, 4),
        "instructions": ref[0],
        "cycles": ref[1],
        "hit_rate": round(best_stats.hit_rate, 4),
    }
    if tcache and chain:
        row["chains"] = {
            "links": best_stats.chain_links,
            "hits": best_stats.chain_hits,
            "poly_hits": best_stats.chain_poly_hits,
            "breaks": best_stats.chain_breaks,
            "longest": best_stats.chain_longest,
        }
    if pure:
        row["pure"] = {
            "blocks": best_stats.pure_blocks,
            "instructions": best_stats.pure_fast_instructions,
        }
    if jit:
        row["jit"] = {
            "blocks": best_stats.jit_blocks,
            "instructions": best_stats.jit_instructions,
            "dispatch_share": round(best_stats.jit_dispatch_share, 4),
            "compile_ms": round(best_stats.jit_compile_ms, 3),
        }
    return row


def run_suite(iters: dict, reps: int, engines=("functional", "pipeline"),
              jit: bool = True):
    results = {}
    modes = _modes(jit)
    for workload, n in iters.items():
        results[workload] = {}
        for engine in engines:
            row = {"iterations": n}
            for mode in modes:
                row[mode] = _measure(workload, engine, mode, n, reps)
            off, nochain, nopure, on = (
                row["tcache_off"], row["tcache_nochain"],
                row["tcache_nopure"], row["tcache_on"])
            row["speedup"] = round(
                on["mips"] / off["mips"] if off["mips"] else 0.0, 3)
            row["chain_speedup"] = round(
                on["mips"] / nochain["mips"] if nochain["mips"] else 0.0, 3)
            row["pure_speedup"] = round(
                on["mips"] / nopure["mips"] if nopure["mips"] else 0.0, 3)
            if "tcache_jit" in row:
                row["jit_speedup"] = round(
                    row["tcache_jit"]["mips"] / on["mips"]
                    if on["mips"] else 0.0, 3)
            results[workload][engine] = row
            # The tcache (chained, pure, jit or not) is guest-invisible:
            # identical results in every mode.
            for mode in modes[1:]:
                for key in ("instructions", "cycles"):
                    assert row[mode][key] == off[key], (
                        f"{workload}/{engine}/{mode}: tcache changed "
                        f"guest-visible {key}: {row[mode][key]} vs "
                        f"{off[key]}"
                    )
    return results


def measure_profiler_overhead(iters: int, reps: int,
                              engine: str = "functional") -> dict:
    """Tight-loop MIPS with the MPROF sink detached vs attached.

    Detached is the tax every user pays for the subsystem existing (one
    pointer test per retired trace, one comparison per chained
    transition); attached is the cost of actually recording.  Guest
    results must be bit-identical in both configurations.
    """
    source = workload_source("tight_loop", iters)

    def best(profiling: bool):
        best_mips, ref, traces = 0.0, None, 0
        for _ in range(reps):
            machine = _build("tight_loop", engine)
            if profiling:
                machine.set_profiling(True)
            host0 = perf_counter()
            result = machine.load_and_run(source,
                                          max_instructions=50_000_000)
            host = perf_counter() - host0
            outcome = (result.instructions, result.cycles)
            if ref is None:
                ref = outcome
            elif outcome != ref:
                raise AssertionError(
                    f"profiler run non-deterministic: {outcome} vs {ref}")
            best_mips = max(best_mips,
                            result.instructions / host / 1e6 if host else 0.0)
            if profiling:
                traces = machine.profiler.total_traces
        return best_mips, ref, traces

    off_mips, off_ref, _ = best(False)
    on_mips, on_ref, traces = best(True)
    assert on_ref == off_ref, (
        f"profiling changed guest-visible results: {on_ref} vs {off_ref}"
    )
    overhead = 1.0 - (on_mips / off_mips) if off_mips else 0.0
    return {
        "workload": "tight_loop",
        "engine": engine,
        "iterations": iters,
        "profiling_off_mips": round(off_mips, 4),
        "profiling_on_mips": round(on_mips, 4),
        "enabled_overhead": round(overhead, 4),
        "traces_recorded": traces,
    }


def measure_preformation(iters: int, reps: int,
                         engine: str = "functional",
                         jit: bool = True) -> dict:
    """mcode_heavy MIPS: dynamic chain warmup vs superblock preformation.

    Preformation compiles and pre-chains the pure mroutine's blocks at
    build time (``Machine.preform_superblocks``); the dynamic baseline
    lets the chainer discover them on first dispatch.  Results must be
    bit-identical; the MIPS delta is recorded win or lose.  With *jit*,
    a third configuration combines preformation with MJIT: the planned
    loop heads must be tier-2 compiled *before the run starts*, so the
    first delivery of the mroutine already executes at steady state.
    """
    source = workload_source("mcode_heavy", iters)

    def best(preform: bool, with_jit: bool = False):
        best_mips, ref = 0.0, None
        blocks = links = warmed = 0
        for _ in range(reps):
            machine = _build("mcode_heavy", engine)
            if with_jit:
                machine.set_tcache_jit(True)
            if preform:
                blocks, links = machine.preform_superblocks()
            if with_jit:
                warmed = machine.perf.tcache.jit_blocks
                assert warmed > 0, (
                    "preform+jit left the loop heads cold: first delivery "
                    "would not run at steady state")
            host0 = perf_counter()
            result = machine.load_and_run(source,
                                          max_instructions=50_000_000)
            host = perf_counter() - host0
            outcome = (result.instructions, result.cycles)
            if ref is None:
                ref = outcome
            elif outcome != ref:
                raise AssertionError(
                    f"preform run non-deterministic: {outcome} vs {ref}")
            best_mips = max(best_mips,
                            result.instructions / host / 1e6 if host else 0.0)
        return best_mips, ref, blocks, links, warmed

    dyn_mips, dyn_ref, _, _, _ = best(False)
    pre_mips, pre_ref, blocks, links, _ = best(True)
    assert pre_ref == dyn_ref, (
        f"preformation changed guest-visible results: {pre_ref} vs {dyn_ref}"
    )
    report = {
        "workload": "mcode_heavy",
        "engine": engine,
        "iterations": iters,
        "dynamic_mips": round(dyn_mips, 4),
        "preformed_mips": round(pre_mips, 4),
        "preform_speedup": round(
            pre_mips / dyn_mips if dyn_mips else 0.0, 3),
        "preformed_blocks": blocks,
        "preformed_links": links,
    }
    if jit:
        jit_mips, jit_ref, _, _, warmed = best(True, with_jit=True)
        assert jit_ref == dyn_ref, (
            f"preform+jit changed guest-visible results: "
            f"{jit_ref} vs {dyn_ref}"
        )
        report["preformed_jit_mips"] = round(jit_mips, 4)
        report["preformed_jit_blocks_warm"] = warmed
    return report


def _load_previous(path: str):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _trajectory(results: dict, previous, profiler: dict = None) -> list:
    """Per-PR history of the tight-loop functional numbers.

    Carries the previous file's trajectory forward; a pre-trajectory file
    (PR 1) is bootstrapped from its recorded results.  The current run
    replaces any earlier entry with the same label.
    """
    trajectory = list(previous.get("trajectory", [])) if previous else []
    if not trajectory and previous:
        old = (previous.get("results", {})
               .get("tight_loop", {}).get("functional"))
        if old and "tcache_on" in old:
            trajectory.append({
                "label": "pr1_tcache",
                "tight_loop_functional": {
                    "tcache_off_mips": old["tcache_off"]["mips"],
                    "tcache_on_mips": old["tcache_on"]["mips"],
                    "speedup": old["speedup"],
                },
            })
    tight = results.get("tight_loop", {}).get("functional")
    if tight:
        entry = {
            "label": TRAJECTORY_LABEL,
            "tight_loop_functional": {
                "tcache_off_mips": tight["tcache_off"]["mips"],
                "tcache_nochain_mips": tight["tcache_nochain"]["mips"],
                "tcache_on_mips": tight["tcache_on"]["mips"],
                "speedup": tight["speedup"],
                "chain_speedup": tight["chain_speedup"],
            },
        }
        if "tcache_jit" in tight:
            entry["tight_loop_functional"]["tcache_jit_mips"] = (
                tight["tcache_jit"]["mips"])
            entry["tight_loop_functional"]["jit_speedup"] = (
                tight["jit_speedup"])
        mcode = results.get("mcode_heavy", {}).get("functional")
        if mcode:
            entry["mcode_heavy_functional"] = {
                "tcache_nopure_mips": mcode["tcache_nopure"]["mips"],
                "tcache_on_mips": mcode["tcache_on"]["mips"],
                "pure_speedup": mcode["pure_speedup"],
            }
        if profiler:
            entry["profiler"] = {
                "profiling_off_mips": profiler["profiling_off_mips"],
                "profiling_on_mips": profiler["profiling_on_mips"],
                "enabled_overhead": profiler["enabled_overhead"],
            }
        trajectory = [e for e in trajectory
                      if e.get("label") != entry["label"]]
        trajectory.append(entry)
    return trajectory


def _disabled_vs_pr4(trajectory: list) -> float:
    """Relative tight-loop tcache_on (closure-tier) MIPS change of this
    run vs the PR-4 trajectory entry (negative = slower than PR 4).
    Records whether the dormant JIT hooks (heat counter, tier-2 probe)
    cost the closure tier anything; cross-run wall clock, so recorded
    rather than asserted."""
    by_label = {e.get("label"): e for e in trajectory}
    pr4 = by_label.get("pr4_mprof")
    now = by_label.get(TRAJECTORY_LABEL)
    if not pr4 or not now:
        return None
    old = pr4["tight_loop_functional"]["tcache_on_mips"]
    new = now["tight_loop_functional"]["tcache_on_mips"]
    return round(new / old - 1.0, 4) if old else None


def _emit_json(results: dict, json_path: str = JSON_PATH,
               profiler: dict = None, preformation: dict = None) -> str:
    path = os.path.abspath(json_path)
    trajectory = _trajectory(results, _load_previous(path),
                             profiler=profiler)
    payload = {
        "benchmark": "host_throughput",
        "results": results,
        "trajectory": trajectory,
    }
    if profiler:
        profiler = dict(profiler)
        delta = _disabled_vs_pr4(trajectory)
        if delta is not None:
            profiler["disabled_mips_vs_pr4"] = delta
        payload["profiler"] = profiler
    if preformation:
        payload["preformation"] = preformation
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _print_table(results: dict) -> None:
    print()
    print(f"{'workload':<18} {'engine':<11} {'off MIPS':>9} "
          f"{'nochain':>9} {'nopure':>9} {'on MIPS':>9} {'jit MIPS':>9} "
          f"{'speedup':>8} {'chain':>7} {'pure':>7} {'jit':>7} "
          f"{'hit rate':>9}")
    for workload, engines in results.items():
        for engine, row in engines.items():
            jit = row.get("tcache_jit")
            jit_mips = f"{jit['mips']:>9.3f}" if jit else f"{'—':>9}"
            jit_speedup = (f"{row['jit_speedup']:>6.2f}x"
                           if jit else f"{'—':>7}")
            print(f"{workload:<18} {engine:<11} "
                  f"{row['tcache_off']['mips']:>9.3f} "
                  f"{row['tcache_nochain']['mips']:>9.3f} "
                  f"{row['tcache_nopure']['mips']:>9.3f} "
                  f"{row['tcache_on']['mips']:>9.3f} "
                  f"{jit_mips} "
                  f"{row['speedup']:>7.2f}x "
                  f"{row['chain_speedup']:>6.2f}x "
                  f"{row['pure_speedup']:>6.2f}x "
                  f"{jit_speedup} "
                  f"{row['tcache_on']['hit_rate']:>8.1%}")
    print()


def run_full(jit: bool = True) -> dict:
    iters = {
        "tight_loop": 100_000,
        "chain_trampoline": 60_000,
        "poly_branch": 60_000,
        "syscall_heavy": 20_000,
        "intercept_heavy": 15_000,
        "mcode_heavy": 15_000,
    }
    results = run_suite(iters, reps=3, jit=jit)
    _print_table(results)
    profiler = measure_profiler_overhead(iters["tight_loop"], reps=3)
    preformation = measure_preformation(iters["mcode_heavy"], reps=3,
                                        jit=jit)
    print(f"profiler overhead  : off {profiler['profiling_off_mips']:.3f} "
          f"MIPS, on {profiler['profiling_on_mips']:.3f} MIPS "
          f"({profiler['enabled_overhead']:.1%} enabled overhead)")
    print(f"preformation       : dynamic {preformation['dynamic_mips']:.3f} "
          f"MIPS, preformed {preformation['preformed_mips']:.3f} MIPS "
          f"({preformation['preform_speedup']:.3f}x, "
          f"{preformation['preformed_blocks']} blocks / "
          f"{preformation['preformed_links']} links ahead)")
    path = _emit_json(results, profiler=profiler, preformation=preformation)
    print(f"results written to {path}")
    assert profiler["enabled_overhead"] <= 0.15, (
        f"profiling-enabled overhead {profiler['enabled_overhead']:.1%} "
        f"> 15% on the tight loop"
    )
    assert preformation["preformed_blocks"] > 0, (
        "preformation compiled no blocks on mcode_heavy"
    )
    poly = results["poly_branch"]["functional"]["tcache_on"]["chains"]
    assert poly["poly_hits"] > 0, (
        "poly_branch workload never hit a secondary chain target"
    )
    assert poly["breaks"] <= poly["poly_hits"] // 10 + 8, (
        f"poly_branch still breaking chains ({poly['breaks']} breaks vs "
        f"{poly['poly_hits']} polymorphic hits) — LRU target map inactive?"
    )
    tight = results["tight_loop"]["functional"]
    assert tight["speedup"] >= 2.6, (
        f"tight-loop functional speedup {tight['speedup']}x < 2.6x"
    )
    assert tight["chain_speedup"] >= 1.3, (
        f"tight-loop chaining speedup {tight['chain_speedup']}x < 1.3x "
        f"over the unchained cache"
    )
    assert tight["tcache_on"]["hit_rate"] >= 0.90, (
        f"tight-loop hit rate {tight['tcache_on']['hit_rate']:.1%} < 90%"
    )
    tramp = results["chain_trampoline"]["functional"]
    assert tramp["chain_speedup"] >= 1.2, (
        f"trampoline chaining speedup {tramp['chain_speedup']}x < 1.2x"
    )
    assert tramp["tcache_on"]["chains"]["hits"] > 0, (
        "trampoline workload never followed a chain link"
    )
    mcode = results["mcode_heavy"]["functional"]
    assert mcode["tcache_on"]["pure"]["instructions"] > 0, (
        "mcode_heavy workload never ran through the pure loop"
    )
    assert mcode["pure_speedup"] >= 1.05, (
        f"mcode_heavy pure-loop speedup {mcode['pure_speedup']}x < 1.05x "
        f"over the guarded chained cache"
    )
    if jit:
        tight_jit = tight["tcache_jit"]
        assert tight_jit["jit"]["dispatch_share"] >= 0.90, (
            f"tight-loop tier-2 dispatch share "
            f"{tight_jit['jit']['dispatch_share']:.1%} < 90%"
        )
        assert tight_jit["mips"] >= 6.16, (
            f"tight-loop MJIT MIPS {tight_jit['mips']} < 6.16 "
            f"(2x the PR-4 trajectory number)"
        )
        assert tight["jit_speedup"] >= 1.5, (
            f"tight-loop tier-2 speedup {tight['jit_speedup']}x < 1.5x "
            f"over the closure tier"
        )
        assert preformation["preformed_jit_blocks_warm"] > 0, (
            "preform+jit warmed no tier-2 blocks"
        )
    return results


def run_smoke(jit: bool = True) -> dict:
    """CI subset: functional engine, small iteration counts, one rep.

    Asserts the structural properties (hit rate, cross-mode equality,
    chains engaging, tier-2 dispatch share) but not the wall-clock
    speedups, which are too noisy for shared runners.  Writes its
    numbers to a separate smoke JSON so the committed full-run results
    stay untouched.
    """
    iters = {
        "tight_loop": 20_000,
        "chain_trampoline": 10_000,
        "poly_branch": 10_000,
        "syscall_heavy": 2_000,
        "intercept_heavy": 1_500,
        "mcode_heavy": 2_000,
    }
    results = run_suite(iters, reps=1, engines=("functional",), jit=jit)
    _print_table(results)
    profiler = measure_profiler_overhead(iters["tight_loop"], reps=1)
    preformation = measure_preformation(iters["mcode_heavy"], reps=1,
                                        jit=jit)
    path = _emit_json(results, json_path=SMOKE_JSON_PATH,
                      profiler=profiler, preformation=preformation)
    print(f"smoke results written to {path}")
    tight = results["tight_loop"]["functional"]
    assert tight["tcache_on"]["hit_rate"] >= 0.90, (
        f"tight-loop hit rate {tight['tcache_on']['hit_rate']:.1%} < 90%"
    )
    for workload in ("tight_loop", "chain_trampoline"):
        chains = results[workload]["functional"]["tcache_on"]["chains"]
        assert chains["hits"] > 0, (
            f"{workload}: chaining never engaged (links={chains['links']})"
        )
    poly = results["poly_branch"]["functional"]["tcache_on"]["chains"]
    assert poly["poly_hits"] > 0, (
        "poly_branch: the polymorphic target map never hit"
    )
    pure = results["mcode_heavy"]["functional"]["tcache_on"]["pure"]
    assert pure["instructions"] > 0, (
        f"mcode_heavy: the pure loop never engaged (blocks={pure['blocks']})"
    )
    # Structural profiler/preformation checks (no wall-clock asserts).
    assert profiler["traces_recorded"] > 0, "profiler recorded no traces"
    assert preformation["preformed_blocks"] > 0, (
        "preformation compiled no blocks"
    )
    if jit:
        tight_jit = tight["tcache_jit"]["jit"]
        assert tight_jit["blocks"] > 0, (
            "tight_loop: MJIT compiled no blocks"
        )
        assert tight_jit["dispatch_share"] >= 0.90, (
            f"tight_loop: tier-2 dispatch share "
            f"{tight_jit['dispatch_share']:.1%} < 90%"
        )
        assert preformation["preformed_jit_blocks_warm"] > 0, (
            "preform+jit warmed no tier-2 blocks"
        )
    return results


def test_host_throughput_smoke(benchmark):
    """Pytest entry point: the smoke subset under the benchmark fixture."""
    benchmark.pedantic(run_smoke, rounds=1, iterations=1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="fast CI subset (<30s, no speedup assertion)")
    jit_group = parser.add_mutually_exclusive_group()
    jit_group.add_argument("--jit", dest="jit", action="store_true",
                           default=True,
                           help="measure the MJIT tier-2 mode (default)")
    jit_group.add_argument("--nojit", dest="jit", action="store_false",
                           help="skip the tcache_jit mode and its asserts")
    args = parser.parse_args(argv)
    try:
        if args.smoke:
            run_smoke(jit=args.jit)
        else:
            run_full(jit=args.jit)
    except AssertionError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
