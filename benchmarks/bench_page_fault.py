"""E3 (§3.2): custom page tables — TLB refill cost.

"Critically, the proximity of MRAM to the instruction fetch unit enables
fast exception dispatching with costs similar to microcode
implementations.  This greatly closes the performance gap between hardware
and software managed TLBs."

Identical two-phase touch workloads (cold pass with TLB misses, warm pass
without) run over the same radix tables on:

* the **Metal machine** — page fault delivered to the `pagefault`
  mroutine in MRAM;
* the **trap machine** — page fault traps to a memory-resident kernel
  refill handler (MIPS-style software TLB);
* an **idealized hardware walker** — analytic: two dependent memory reads
  per miss, no pipeline disturbance (the x86-style bound).

Per-miss refill cost = (cold pass − warm pass) / misses.
"""

from repro import (
    Cause,
    MachineConfig,
    TimingModel,
    build_metal_machine,
    build_trap_machine,
)
from repro.bench.report import format_table
from repro.mcode.pagetable import (
    PTE_G,
    PTE_R,
    PTE_W,
    PTE_X,
    PageTableBuilder,
    make_pagetable_routines,
)
from repro.osdemo.kernel import TRAP_PF_REFILL_ASM

from common import emit, run_once

PAGES = 24          # footprint fits the 32-entry TLB: the cold pass takes
                    # one compulsory miss per page, the warm pass none
TOUCHES = 240
PT_POOL = 0x100000
MAILBOX = 0x2F00
KSAVE = 0x700
KPTROOT = 0x780
VA_BASE = 0x400000
PA_BASE = 0x80000

# Shared two-phase touch loop: the cold pass takes the compulsory misses,
# the warm pass replays the identical sequence with a hot TLB.  Patterns:
# 'seq' strides through the pages in order; 'lcg' picks pseudo-randomly.
def touch_loop(pattern: str) -> str:
    if pattern == "seq":
        pick = f"""
    li   t3, {PAGES}
    remu t4, s3, t3          # page index = i % PAGES
    addi s3, s3, 1
"""
    else:
        pick = f"""
    li   t4, 1103515245
    mul  s3, s3, t4
    li   t4, 12345
    add  s3, s3, t4
    srli t4, s3, 10
    li   t3, {PAGES}
    remu t4, t4, t3          # pseudo-random page index
"""
    return f"""
    li   s4, TIMER_COUNT
    li   s2, {VA_BASE:#x}
    li   s3, 12345
    lw   s6, 0(s4)           # t0: start of cold pass
    li   s0, {TOUCHES}
cold:
{pick}
    slli t4, t4, 12
    add  t4, t4, s2
    lw   t5, 0(t4)
    addi s0, s0, -1
    bnez s0, cold
    lw   s7, 0(s4)           # t1: end of cold pass
    li   s3, 12345           # replay the identical sequence
    li   s0, {TOUCHES}
warm:
{pick}
    slli t4, t4, 12
    add  t4, t4, s2
    lw   t5, 0(t4)
    addi s0, s0, -1
    bnez s0, warm
    lw   s8, 0(s4)           # t2: end of warm pass
    halt
"""


def _build_tables(machine):
    pt = PageTableBuilder(machine.bus, pool_base=PT_POOL)
    pt.map_range(0x0, 0x0, 0x10000, flags=PTE_R | PTE_W | PTE_X | PTE_G)
    pt.map(0xF0001000, 0xF0001000, flags=PTE_R | PTE_W | PTE_G)  # timer
    for i in range(PAGES):
        pt.map(VA_BASE + i * 4096, PA_BASE + i * 4096,
               flags=PTE_R | PTE_W | PTE_G)
    return pt


def _phases(machine):
    cold = (machine.reg("s7") - machine.reg("s6")) & 0xFFFFFFFF
    warm = (machine.reg("s8") - machine.reg("s7")) & 0xFFFFFFFF
    return cold, warm


def run_metal(pattern, tlb_entries=32):
    cfg = MachineConfig(engine="pipeline", tlb_entries=tlb_entries)
    m = build_metal_machine(make_pagetable_routines(MAILBOX, 0x1040),
                            config=cfg)
    m.route_page_faults()
    _build_tables(m)
    m.load_and_run(f"""
_start:
    li   a0, {PT_POOL:#x}
    li   a1, 0
    menter MR_PTROOT_SET
    li   a0, 1
    menter MR_PAGING_CTL
{touch_loop(pattern)}
""", max_instructions=10_000_000)
    misses = sum(
        m.core.metal.stats.deliveries.get(int(c), 0)
        for c in (Cause.PAGE_FAULT_LOAD, Cause.PAGE_FAULT_STORE)
    )
    cold, warm = _phases(m)
    return cold, warm, misses


def run_trap(pattern, tlb_entries=32):
    cfg = MachineConfig(engine="pipeline", tlb_entries=tlb_entries,
                        extra_symbols={"KSAVE": KSAVE, "KPTROOT": KPTROOT})
    m = build_trap_machine(config=cfg)
    _build_tables(m)
    m.write_word(KPTROOT, PT_POOL)
    m.write_word(KPTROOT + 4, 0)
    m.load_and_run(f"""
_start:
    li   t0, ktrap
    csrrw zero, CSR_MTVEC, t0
    # Wire the kernel-code and timer pages into the TLB before enabling
    # paging — the refill handler must itself be reachable (the MIPS
    # "wired entries" trick; Metal needs none of this, its walker fetches
    # from MRAM).
    li   t0, 0x1000
    li   t1, 0x1000 + 7      # R|W|X
    mtlbw t0, t1
    li   t0, 0xF0001000
    li   t1, 0xF0001000 + 3  # R|W
    mtlbw t0, t1
    li   t0, 1
    mpgon t0                 # enable paging (machine mode op)
{touch_loop(pattern)}
ktrap:
    mpst t0, KSAVE+0(zero)
    mpst t1, KSAVE+4(zero)
    csrrs t0, CSR_MCAUSE, zero
{TRAP_PF_REFILL_ASM}
kt_fatal:
    halt
""", max_instructions=10_000_000)
    misses = m.core.tlb.misses
    cold, warm = _phases(m)
    return cold, warm, misses


def run_experiment():
    timing = TimingModel()
    rows = []
    for pattern in ("seq", "lcg"):
        m_cold, m_warm, m_misses = run_metal(pattern)
        t_cold, t_warm, t_misses = run_trap(pattern)
        metal_cost = (m_cold - m_warm) / max(1, m_misses)
        trap_cost = (t_cold - t_warm) / max(1, t_misses)
        # Idealized hardware walker: two dependent table reads per miss.
        hw_cost = 2 * timing.mem_latency
        rows.append([pattern, m_misses, metal_cost, trap_cost, hw_cost,
                     trap_cost / metal_cost])
    return rows


def test_page_fault_refill(benchmark):
    rows = run_once(benchmark, run_experiment)
    emit("e3_page_fault", format_table(
        f"E3: TLB refill cost over x86-style radix tables "
        f"({PAGES} pages, {TOUCHES} touches, 32-entry TLB, pipeline engine)",
        ["pattern", "misses", "Metal mroutine (cyc/miss)",
         "trap refill (cyc/miss)", "ideal HW walker (cyc/miss)",
         "trap/Metal"],
        rows,
        note="Paper §3.2: the mroutine walker 'greatly closes the gap' to "
             "hardware walkers while keeping the data structure custom.",
    ))
    for pattern, misses, metal, trap, hw, ratio in rows:
        assert misses > 0
        assert metal < trap, f"{pattern}: Metal must beat the trap refill"
        # 'greatly closes the gap': within ~2.5x of an ideal 2-access walker
        assert metal / hw < 2.5, f"{pattern}: gap to hardware too large"
        assert ratio > 1.2
