"""E7: where Metal's Table 2 hardware cost comes from (ablation).

Breaks the Metal delta into its components (the paper attributes the cost
to the MRAM, the Metal register file and the small control structures) and
sweeps the MRAM size — the sizing knob a vendor would actually turn.
"""

from repro.bench.report import format_series, format_table
from repro.synthesis import build_baseline_cpu, build_metal_extension

from common import emit, run_once


def run_breakdown():
    base = build_baseline_cpu().total
    metal = build_metal_extension()
    rows = []
    total = metal.total
    for path, cost in metal.breakdown(depth=1):
        if path == "metal":
            continue
        rows.append([
            path.split("/", 1)[1],
            cost.cells,
            cost.wires,
            100.0 * cost.cells / total.cells,
            100.0 * cost.cells / base.cells,
        ])
    rows.sort(key=lambda r: -r[1])
    return base, total, rows


def run_mram_sweep():
    base = build_baseline_cpu().total
    points = []
    for code_kib, data_kib in ((1, 1), (2, 1), (4, 1), (8, 2), (16, 4)):
        ext = build_metal_extension(mram_code_kib=code_kib,
                                    mram_data_kib=data_kib).total
        points.append((
            f"{code_kib}+{data_kib} KiB",
            (ext.cells, 100.0 * ext.cells / base.cells),
        ))
    return points


def test_hw_ablation(benchmark):
    def experiment():
        return run_breakdown(), run_mram_sweep()

    (base, total, rows), sweep = run_once(benchmark, experiment)
    table = format_table(
        "E7a: Metal hardware delta by component "
        "(prototype MRAM: 4 KiB code + 1 KiB data)",
        ["component", "cells", "wires", "% of delta", "% of baseline CPU"],
        rows,
    )
    series = format_series(
        "\nE7b: Metal cell cost vs MRAM size",
        "MRAM (code+data)", ["metal cells", "% of baseline CPU"],
        sweep,
        note="The paper's +14.3% cells is dominated by the MRAM macro; "
             "vendors trade extension capacity directly for area.",
    )
    emit("e7_hw_ablation", table + "\n" + series)

    by_name = {r[0]: r for r in rows}
    # MRAM dominates the delta
    assert rows[0][0] == "mram"
    assert by_name["mram"][3] > 50
    # MReg file is the second-largest block
    assert by_name["mreg_file"][1] > by_name["intercept_unit"][1]
    # monotone in MRAM size
    cells = [c for _, (c, _) in sweep]
    assert cells == sorted(cells)
    # the smallest configuration is cheap; the cost is essentially linear
    # in MRAM bits (the vendor's sizing trade-off)
    assert sweep[0][1][1] < 10
    assert sweep[-1][1][0] > 3 * sweep[0][1][0]
