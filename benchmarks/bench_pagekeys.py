"""E9 (§2.3, Table 2 text): page keys accelerate batch permission changes.

"Page keys provide an extra level of indirection for page permissions to
accelerate batch permission changes."

Revoke-then-restore write access to N pages, two ways:

* **page keys** — all N pages carry one key; a single ``mpkr`` write flips
  them all (one mroutine call each way);
* **per-page PTEs** — rewrite each leaf PTE and invalidate its TLB entry,
  then take a refill fault per page when access resumes (the conventional
  mprotect path).

Both validated for correctness: while revoked, a store must fault.
"""

from repro import Cause, build_metal_machine
from repro.bench.report import format_series
from repro.isa.metal_ops import pack_pkr
from repro.mcode.pagetable import (
    PTE_G,
    PTE_R,
    PTE_W,
    PTE_X,
    PageTableBuilder,
    make_pagetable_routines,
)
from repro.metal.mroutine import MRoutine

from common import emit, run_once

PT_POOL = 0x100000
VA_BASE = 0x400000
PA_BASE = 0x80000
KEY = 5

PKR_SET = MRoutine(name="pkr_set", entry=40, source="""
pkr_set:
    rmr  t0, m0
    bnez t0, pk_fail
    mpkr a0
    mexit
pk_fail:
    li   t0, CAUSE_PRIVILEGE
    mraise t0
""", shared_mregs=(0,))


def _machine(pages, extra=()):
    m = build_metal_machine(
        make_pagetable_routines(0x2F00, 0x1040) + [PKR_SET] + list(extra),
        engine="pipeline",
    )
    m.route_page_faults()
    pt = PageTableBuilder(m.bus, pool_base=PT_POOL)
    pt.map_range(0x0, 0x0, 0x10000, flags=PTE_R | PTE_W | PTE_X | PTE_G)
    pt.map(0xF0001000, 0xF0001000, flags=PTE_R | PTE_W | PTE_G)  # timer
    for i in range(pages):
        pt.map(VA_BASE + i * 4096, PA_BASE + i * 4096,
               flags=PTE_R | PTE_W | PTE_G, key=KEY)
    return m, pt


BOOT = f"""
_start:
    li   a0, {PT_POOL:#x}
    li   a1, 0
    menter MR_PTROOT_SET
    li   a0, 1
    menter MR_PAGING_CTL
"""


def _touch_loop(pages, label):
    return f"""
    li   t0, {VA_BASE:#x}
    li   t2, {pages}
{label}:
    sw   t2, 0(t0)
    li   t3, 0x1000
    add  t0, t0, t3
    addi t2, t2, -1
    bnez t2, {label}
"""


def _run_keys(pages):
    """Flip with one PKR write each way."""
    m, _ = _machine(pages)
    locked = pack_pkr(write_disabled_keys=[KEY])
    m.load_and_run(BOOT + _touch_loop(pages, "warm") + f"""
    # --- measured region: revoke + restore write access -------------
    li   s4, TIMER_COUNT
    lw   s6, 0(s4)
    li   a0, {locked:#x}
    menter MR_PKR_SET          # revoke: one register write
    li   a0, 0
    menter MR_PKR_SET          # restore
    lw   s7, 0(s4)
""" + _touch_loop(pages, "after") + "    halt\n",
                   max_instructions=10_000_000)
    return (m.reg("s7") - m.reg("s6")) & 0xFFFFFFFF


def _run_ptes(pages):
    """Flip by rewriting each PTE + invalidating, then re-faulting."""
    m, pt = _machine(pages, extra=[PTE_CLEARW, PTE_SETW])
    m.load_and_run(BOOT + _touch_loop(pages, "warm") + f"""
    li   s4, TIMER_COUNT
    lw   s6, 0(s4)
    # revoke: clear W in every leaf PTE and invalidate its TLB entry
    li   s2, {VA_BASE:#x}
    li   s3, {pages}
revoke:
    mv   a0, s2
    menter MR_PTE_CLEARW
    mv   a0, s2
    menter MR_VM_INVAL
    li   t3, 0x1000
    add  s2, s2, t3
    addi s3, s3, -1
    bnez s3, revoke
    # restore: set W again and invalidate (refaults on next touch)
    li   s2, {VA_BASE:#x}
    li   s3, {pages}
restore:
    mv   a0, s2
    menter MR_PTE_SETW
    mv   a0, s2
    menter MR_VM_INVAL
    li   t3, 0x1000
    add  s2, s2, t3
    addi s3, s3, -1
    bnez s3, restore
    lw   s7, 0(s4)
""" + _touch_loop(pages, "after") + "    halt\n",
                   max_instructions=10_000_000)
    return (m.reg("s7") - m.reg("s6")) & 0xFFFFFFFF


# PTE rewrite helpers (privileged mroutines: walk to the leaf, flip W).
def _pte_flip_routine(name, entry, set_w):
    op = ("    ori  t1, t1, PTE_W" if set_w
          else "    li   t0, -1 - PTE_W\n    and  t1, t1, t0")
    return MRoutine(name=name, entry=entry, source=f"""
{name}:
    rmr  t0, m0
    bnez t0, {name}_fail
    mld  t2, PTROOT_SET_DATA+0(zero)
    srli t1, a0, 22
    slli t1, t1, 2
    add  t2, t2, t1
    mpld t2, 0(t2)             # L1 PTE
    li   t1, 0xFFFFF000
    and  t2, t2, t1
    srli t1, a0, 12
    andi t1, t1, 0x3FF
    slli t1, t1, 2
    add  t2, t2, t1            # &leaf
    mpld t1, 0(t2)
{op}
    mpst t1, 0(t2)
    mexit
{name}_fail:
    li   t0, CAUSE_PRIVILEGE
    mraise t0
""", shared_mregs=(0,), shared_data=("ptroot_set",))


PTE_CLEARW = _pte_flip_routine("pte_clearw", 41, set_w=False)
PTE_SETW = _pte_flip_routine("pte_setw", 42, set_w=True)


def run_experiment():
    points = []
    for pages in (4, 16, 64):
        keys = _run_keys(pages)
        ptes = _run_ptes(pages)
        points.append((pages, (keys, ptes, ptes / keys)))
    return points


def test_pagekey_batch_flip(benchmark):
    points = run_once(benchmark, run_experiment)
    emit("e9_pagekeys", format_series(
        "E9: batch write-permission flip, revoke + restore "
        "(cycles in the measured region, pipeline engine)",
        "pages", ["page keys (mpkr)", "per-page PTE rewrite", "speedup"],
        points,
        note="Paper §2.3: page keys 'accelerate batch permission changes' — "
             "one register write vs O(pages) PTE edits + invalidations.",
    ))
    for pages, (keys, ptes, speedup) in points:
        assert keys < ptes
    # the win grows with the batch size
    speedups = [s for _, (_, _, s) in points]
    assert speedups == sorted(speedups)
    assert speedups[-1] > 10


def test_pagekey_correctness(benchmark):
    """While revoked, a store must fault (checked outside the timing)."""
    def check():
        m = build_metal_machine(
            make_pagetable_routines(0x2F00, 0x2000) + [PKR_SET],
            with_caches=False,
        )
        m.route_page_faults()
        pt = PageTableBuilder(m.bus, pool_base=PT_POOL)
        pt.map_range(0x0, 0x0, 0x10000,
                     flags=PTE_R | PTE_W | PTE_X | PTE_G)
        pt.map(VA_BASE, PA_BASE, flags=PTE_R | PTE_W | PTE_G, key=KEY)
        locked = pack_pkr(write_disabled_keys=[KEY])
        m.load_and_run(BOOT + f"""
    li   t0, {VA_BASE:#x}
    li   t1, 1
    sw   t1, 0(t0)            # fine: key unlocked
    li   a0, {locked:#x}
    menter MR_PKR_SET
    li   t0, {VA_BASE:#x}
    sw   t1, 0(t0)            # write-disabled -> key fault -> forwarded
    halt
.org 0x2000
kfault:
    li   s11, 1
    halt
""", base=0x1000, max_instructions=100_000)
        return m

    m = run_once(benchmark, check)
    assert m.reg("s11") == 1
    assert m.core.tlb.key_faults >= 1
