"""E1 (§2.2 / §5): mode-transition overhead.

The paper's quantitative claims:

* Metal entry/exit has "virtually zero overhead" thanks to MRAM locality
  and the decode-stage menter/mexit replacement;
* a conventional trap costs a pipeline flush plus a memory-resident
  vector fetch;
* an Alpha PALcode no-op call costs "approximately 18 cycles".

We measure a no-op routine call on all three machines (cycle-accurate
pipeline engine, warm caches, 1000 calls, harness loop subtracted), plus
the §2.2 ablation with the decode-stage replacement disabled.
"""

from repro import (
    MachineConfig,
    MRoutine,
    TimingModel,
    build_metal_machine,
    build_palcode_machine,
    build_trap_machine,
)
from repro.bench.report import format_table

from common import emit, run_once

CALLS = 1000

NOOP = lambda: [MRoutine(name="noop", entry=0, source="mexit\n")]  # noqa: E731

METAL_LOOP = """
_start:
    li   s0, {n}
loop:
    menter MR_NOOP
    addi s0, s0, -1
    bnez s0, loop
    halt
"""

TRAP_LOOP = """
_start:
    li   t0, handler
    csrrw zero, CSR_MTVEC, t0
    li   s0, {n}
loop:
    ecall
    addi s0, s0, -1
    bnez s0, loop
    halt
handler:
    csrrs t1, CSR_MEPC, zero
    addi t1, t1, 4
    csrrw zero, CSR_MEPC, t1
    mret
"""

EMPTY_LOOP = """
_start:
    li   s0, {n}
loop:
    nop
    addi s0, s0, -1
    bnez s0, loop
    halt
"""


def _per_call(make_machine, loop_src):
    m1 = make_machine()
    m1.load_and_run(loop_src.format(n=CALLS), max_instructions=10_000_000)
    m2 = make_machine()
    m2.load_and_run(EMPTY_LOOP.format(n=CALLS), max_instructions=10_000_000)
    return (m1.cycles - m2.cycles) / CALLS


def run_experiment():
    results = {}
    results["Metal (menter/mexit)"] = _per_call(
        lambda: build_metal_machine(NOOP(), engine="pipeline"), METAL_LOOP)
    results["Metal, no decode replacement"] = _per_call(
        lambda: build_metal_machine(NOOP(), config=MachineConfig(
            engine="pipeline",
            timing=TimingModel(decode_replacement=False))), METAL_LOOP)
    # The paper's *other* pillar: MRAM locality.  Same decode replacement,
    # but mroutine fetches cost main-memory latency.
    results["Metal, MRAM at memory latency"] = _per_call(
        lambda: build_metal_machine(NOOP(), config=MachineConfig(
            engine="pipeline",
            timing=TimingModel(mram_fetch=TimingModel().mem_latency))),
        METAL_LOOP)
    results["Trap architecture (ecall/mret)"] = _per_call(
        lambda: build_trap_machine(engine="pipeline"), TRAP_LOOP)
    results["PALcode-style (memory-resident)"] = _per_call(
        lambda: build_palcode_machine(NOOP(), engine="pipeline"), METAL_LOOP)
    return results


def test_transition_overhead(benchmark):
    results = run_once(benchmark, run_experiment)
    rows = [[name, cost] for name, cost in results.items()]
    emit("e1_transition_overhead", format_table(
        "E1: no-op routine call cost (cycles/call over an empty loop; "
        f"{CALLS} calls, warm caches, pipeline engine)",
        ["mechanism", "cycles/call"], rows,
        note="Paper: Metal ~0 extra; Alpha PALcode no-op call ~18 cycles; "
             "traps in between.",
    ))

    metal = results["Metal (menter/mexit)"]
    metal_noopt = results["Metal, no decode replacement"]
    metal_slow_mram = results["Metal, MRAM at memory latency"]
    trap = results["Trap architecture (ecall/mret)"]
    pal = results["PALcode-style (memory-resident)"]

    # Who wins, in the paper's order:
    assert metal < metal_noopt < pal
    assert metal < trap < pal
    # Both pillars matter: losing MRAM locality alone is already costly.
    assert metal_slow_mram > metal + 5
    # "virtually zero": two 1-cycle instruction slots, no bubbles.
    assert metal <= 3
    # "approximately 18 cycles" for the PALcode-style no-op call.
    assert 15 <= pal <= 21
    # Metal is an order of magnitude cheaper than PALcode.
    assert pal / metal >= 6
