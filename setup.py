"""Setup shim.

The execution environment has no `wheel` package and no network, so PEP 517
editable installs (which build a wheel) fail; this classic setup.py lets
``pip install -e .`` use the legacy develop path.  Metadata mirrors
pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Metal: An Open Architecture for Developing "
        "Processor Features' (HotOS 2023)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
